#include "workload/dataset_generator.h"

#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(DatasetGeneratorTest, HonorsScaleParameters) {
  DatasetConfig config = SmallDataset();
  config.num_users = 500;
  config.items_per_user = 3.0;
  const auto dataset = GenerateDataset(config);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().graph.num_users(), 500u);
  EXPECT_EQ(dataset.value().store.num_items(), 1500u);
  EXPECT_EQ(dataset.value().tags.size(), config.num_tags);
}

TEST(DatasetGeneratorTest, DeterministicFromSeed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  const auto a = GenerateDataset(config);
  const auto b = GenerateDataset(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().graph.neighbors(), b.value().graph.neighbors());
  ASSERT_EQ(a.value().store.num_items(), b.value().store.num_items());
  for (ItemId i = 0; i < a.value().store.num_items(); ++i) {
    EXPECT_EQ(a.value().store.owner(i), b.value().store.owner(i));
    EXPECT_EQ(a.value().store.quality(i), b.value().store.quality(i));
  }
}

TEST(DatasetGeneratorTest, DifferentSeedsDiffer) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  DatasetConfig other = config;
  other.seed = config.seed + 1;
  const auto a = GenerateDataset(config);
  const auto b = GenerateDataset(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().graph.neighbors(), b.value().graph.neighbors());
}

TEST(DatasetGeneratorTest, QualityWithinBounds) {
  const auto dataset = GenerateDataset(SmallDataset());
  ASSERT_TRUE(dataset.ok());
  for (ItemId i = 0; i < dataset.value().store.num_items(); ++i) {
    const float q = dataset.value().store.quality(i);
    EXPECT_GE(q, 0.0f);
    EXPECT_LE(q, 1.0f);
  }
}

TEST(DatasetGeneratorTest, GeoFractionRespected) {
  DatasetConfig config = SmallDataset();
  config.num_users = 1000;
  config.geo_fraction = 0.25;
  const auto dataset = GenerateDataset(config);
  ASSERT_TRUE(dataset.ok());
  size_t geo_items = 0;
  for (ItemId i = 0; i < dataset.value().store.num_items(); ++i) {
    if (dataset.value().store.has_geo(i)) ++geo_items;
  }
  const double fraction = static_cast<double>(geo_items) /
                          static_cast<double>(dataset.value().store.num_items());
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

TEST(DatasetGeneratorTest, ZeroGeoFractionMeansNoGeo) {
  DatasetConfig config = SmallDataset();
  config.geo_fraction = 0.0;
  const auto dataset = GenerateDataset(config);
  ASSERT_TRUE(dataset.ok());
  for (ItemId i = 0; i < dataset.value().store.num_items(); ++i) {
    EXPECT_FALSE(dataset.value().store.has_geo(i));
  }
}

TEST(DatasetGeneratorTest, SocialLocalityRaisesFriendTagOverlap) {
  // Measure: fraction of items sharing >= 1 tag with some friend's item.
  auto overlap_for = [](double locality) {
    DatasetConfig config = SmallDataset();
    config.num_users = 800;
    config.social_locality = locality;
    config.seed = 99;  // identical structure apart from locality
    const Dataset dataset = GenerateDataset(config).value();
    std::vector<std::vector<TagId>> user_tags(dataset.graph.num_users());
    for (ItemId i = 0; i < dataset.store.num_items(); ++i) {
      for (const TagId t : dataset.store.tags(i)) {
        user_tags[dataset.store.owner(i)].push_back(t);
      }
    }
    size_t overlapping = 0;
    for (ItemId i = 0; i < dataset.store.num_items(); ++i) {
      const UserId owner = dataset.store.owner(i);
      bool found = false;
      for (const UserId f : dataset.graph.Friends(owner)) {
        for (const TagId t : dataset.store.tags(i)) {
          for (const TagId ft : user_tags[f]) {
            if (t == ft) {
              found = true;
              break;
            }
          }
          if (found) break;
        }
        if (found) break;
      }
      if (found) ++overlapping;
    }
    return static_cast<double>(overlapping) /
           static_cast<double>(dataset.store.num_items());
  };
  EXPECT_GT(overlap_for(0.9), overlap_for(0.0) + 0.05);
}

TEST(DatasetGeneratorTest, AllGraphKindsGenerate) {
  for (const GraphKind kind :
       {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert,
        GraphKind::kWattsStrogatz, GraphKind::kPlantedPartition}) {
    DatasetConfig config = SmallDataset();
    config.num_users = 200;
    config.graph_kind = kind;
    const auto dataset = GenerateDataset(config);
    ASSERT_TRUE(dataset.ok());
    EXPECT_EQ(dataset.value().graph.num_users(), 200u);
    EXPECT_GT(dataset.value().graph.num_edges(), 0u);
  }
}

TEST(DatasetGeneratorTest, RejectsBadConfigs) {
  DatasetConfig config = SmallDataset();
  config.num_users = 0;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config = SmallDataset();
  config.num_tags = 0;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config = SmallDataset();
  config.social_locality = 1.5;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config = SmallDataset();
  config.geo_fraction = -0.1;
  EXPECT_FALSE(GenerateDataset(config).ok());
}

TEST(DatasetGeneratorTest, PresetsAreConsistent) {
  EXPECT_LT(SmallDataset().num_users, MediumDataset().num_users);
  EXPECT_LT(MediumDataset().num_users, LargeDataset().num_users);
  EXPECT_EQ(ScaledDataset(12345).num_users, 12345u);
}

}  // namespace
}  // namespace amici
