#include "workload/query_workload.h"

#include <set>

#include "gtest/gtest.h"

namespace amici {
namespace {

class QueryWorkloadTest : public ::testing::Test {
 protected:
  QueryWorkloadTest() {
    DatasetConfig config = SmallDataset();
    config.num_users = 500;
    config.num_tags = 300;
    config.geo_fraction = 0.5;
    dataset_ = GenerateDataset(config).value();
  }

  Dataset dataset_;
};

TEST_F(QueryWorkloadTest, GeneratesRequestedCountOfValidQueries) {
  QueryWorkloadConfig config;
  config.num_queries = 100;
  const auto queries = GenerateQueries(dataset_, config);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries.value().size(), 100u);
  for (const SocialQuery& query : queries.value()) {
    EXPECT_TRUE(ValidateQuery(query, dataset_.graph.num_users()).ok());
    EXPECT_EQ(query.k, config.k);
    EXPECT_EQ(query.alpha, config.alpha);
    EXPECT_LE(query.tags.size(), config.max_tags_per_query);
  }
}

TEST_F(QueryWorkloadTest, DeterministicFromSeed) {
  QueryWorkloadConfig config;
  config.num_queries = 50;
  const auto a = GenerateQueries(dataset_, config);
  const auto b = GenerateQueries(dataset_, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].user, b.value()[i].user);
    EXPECT_EQ(a.value()[i].tags, b.value()[i].tags);
  }
}

TEST_F(QueryWorkloadTest, GeoFilterAttachesValidCircles) {
  QueryWorkloadConfig config;
  config.num_queries = 30;
  config.with_geo_filter = true;
  config.radius_km = 7.5;
  const auto queries = GenerateQueries(dataset_, config);
  ASSERT_TRUE(queries.ok());
  for (const SocialQuery& query : queries.value()) {
    EXPECT_TRUE(query.has_geo_filter);
    EXPECT_FLOAT_EQ(query.radius_km, 7.5f);
  }
}

TEST_F(QueryWorkloadTest, GeoWorkloadWithoutGeoItemsFails) {
  DatasetConfig config = SmallDataset();
  config.num_users = 100;
  config.geo_fraction = 0.0;
  const Dataset no_geo = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.with_geo_filter = true;
  EXPECT_EQ(GenerateQueries(no_geo, workload).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(QueryWorkloadTest, DegreeBiasSkewsTowardsActiveUsers) {
  QueryWorkloadConfig biased;
  biased.num_queries = 400;
  biased.degree_biased_users = true;
  QueryWorkloadConfig uniform;
  uniform.num_queries = 400;
  uniform.degree_biased_users = false;

  auto mean_degree = [this](const std::vector<SocialQuery>& queries) {
    double total = 0.0;
    for (const SocialQuery& q : queries) {
      total += static_cast<double>(dataset_.graph.Degree(q.user));
    }
    return total / static_cast<double>(queries.size());
  };
  const auto biased_queries = GenerateQueries(dataset_, biased);
  const auto uniform_queries = GenerateQueries(dataset_, uniform);
  ASSERT_TRUE(biased_queries.ok());
  ASSERT_TRUE(uniform_queries.ok());
  EXPECT_GT(mean_degree(biased_queries.value()),
            mean_degree(uniform_queries.value()));
}

TEST_F(QueryWorkloadTest, ModesPropagate) {
  QueryWorkloadConfig config;
  config.num_queries = 10;
  config.mode = MatchMode::kAll;
  const auto queries = GenerateQueries(dataset_, config);
  ASSERT_TRUE(queries.ok());
  for (const SocialQuery& query : queries.value()) {
    EXPECT_EQ(query.mode, MatchMode::kAll);
  }
}

TEST_F(QueryWorkloadTest, RejectsBadConfigs) {
  QueryWorkloadConfig config;
  config.num_queries = 0;
  EXPECT_FALSE(GenerateQueries(dataset_, config).ok());
  config = QueryWorkloadConfig{};
  config.tag_locality = 2.0;
  EXPECT_FALSE(GenerateQueries(dataset_, config).ok());
}

}  // namespace
}  // namespace amici
