#include "workload/metrics.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

std::vector<ScoredItem> Ranking(std::vector<ItemId> items) {
  std::vector<ScoredItem> out;
  float score = 1.0f;
  for (const ItemId item : items) {
    out.push_back({item, score});
    score -= 0.01f;
  }
  return out;
}

TEST(PrecisionTest, IdenticalRankingsScoreOne) {
  const auto truth = Ranking({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(PrecisionAtK(truth, truth, 5), 1.0);
}

TEST(PrecisionTest, DisjointRankingsScoreZero) {
  EXPECT_DOUBLE_EQ(
      PrecisionAtK(Ranking({1, 2, 3}), Ranking({4, 5, 6}), 3), 0.0);
}

TEST(PrecisionTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(
      PrecisionAtK(Ranking({1, 2, 3, 4}), Ranking({1, 9, 3, 8}), 4), 0.5);
}

TEST(PrecisionTest, OrderWithinTopKIrrelevant) {
  EXPECT_DOUBLE_EQ(
      PrecisionAtK(Ranking({1, 2, 3}), Ranking({3, 1, 2}), 3), 1.0);
}

TEST(PrecisionTest, TruthShorterThanK) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(Ranking({1, 2}), Ranking({1, 2, 3}), 10),
                   1.0);
}

TEST(PrecisionTest, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, Ranking({1}), 5), 1.0);
}

TEST(RecallTest, FindsTruthAnywhereInCandidate) {
  // Truth top-2 = {1, 2}; candidate has them at ranks 3 and 4.
  EXPECT_DOUBLE_EQ(
      RecallAtK(Ranking({1, 2, 9, 8}), Ranking({7, 6, 1, 2}), 2), 1.0);
}

TEST(RecallTest, MissingItemsLowerRecall) {
  EXPECT_DOUBLE_EQ(
      RecallAtK(Ranking({1, 2, 3, 4}), Ranking({1, 2}), 4), 0.5);
}

TEST(KendallTauTest, IdenticalOrderIsOne) {
  const auto truth = Ranking({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(KendallTau(truth, truth), 1.0);
}

TEST(KendallTauTest, ReversedOrderIsMinusOne) {
  EXPECT_DOUBLE_EQ(
      KendallTau(Ranking({1, 2, 3, 4}), Ranking({4, 3, 2, 1})), -1.0);
}

TEST(KendallTauTest, SingleSwapIsFractional) {
  // 4 shared items, one adjacent swap -> (5 - 1) / 6.
  const double tau =
      KendallTau(Ranking({1, 2, 3, 4}), Ranking({2, 1, 3, 4}));
  EXPECT_NEAR(tau, 4.0 / 6.0, 1e-9);
}

TEST(KendallTauTest, FewSharedItemsDefaultsToOne) {
  EXPECT_DOUBLE_EQ(KendallTau(Ranking({1}), Ranking({1})), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(Ranking({1, 2}), Ranking({3, 4})), 1.0);
}

TEST(MeanScoreErrorTest, ZeroForIdenticalScores) {
  const auto truth = Ranking({1, 2, 3});
  EXPECT_DOUBLE_EQ(MeanScoreError(truth, truth), 0.0);
}

TEST(MeanScoreErrorTest, MeasuresSharedItemGap) {
  std::vector<ScoredItem> truth{{1, 0.9f}, {2, 0.5f}};
  std::vector<ScoredItem> candidate{{1, 0.8f}, {3, 0.4f}};
  EXPECT_NEAR(MeanScoreError(truth, candidate), 0.1, 1e-6);
}

TEST(MeanScoreErrorTest, NoSharedItemsIsZero) {
  EXPECT_DOUBLE_EQ(
      MeanScoreError(Ranking({1}), Ranking({2})), 0.0);
}

}  // namespace
}  // namespace amici
