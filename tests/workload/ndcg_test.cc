#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "workload/metrics.h"

namespace amici {
namespace {

std::vector<ScoredItem> Ranking(
    std::vector<std::pair<ItemId, float>> entries) {
  std::vector<ScoredItem> out;
  for (const auto& [item, score] : entries) out.push_back({item, score});
  return out;
}

TEST(NdcgTest, IdenticalRankingIsOne) {
  const auto truth =
      Ranking({{1, 1.0f}, {2, 0.8f}, {3, 0.5f}, {4, 0.2f}});
  EXPECT_DOUBLE_EQ(NdcgAtK(truth, truth, 4), 1.0);
}

TEST(NdcgTest, DisjointRankingIsZero) {
  const auto truth = Ranking({{1, 1.0f}, {2, 0.5f}});
  const auto candidate = Ranking({{8, 1.0f}, {9, 0.5f}});
  EXPECT_DOUBLE_EQ(NdcgAtK(truth, candidate, 2), 0.0);
}

TEST(NdcgTest, SwapAtTopCostsMoreThanSwapAtBottom) {
  const auto truth =
      Ranking({{1, 1.0f}, {2, 0.7f}, {3, 0.4f}, {4, 0.1f}});
  const auto top_swap =
      Ranking({{2, 0.7f}, {1, 1.0f}, {3, 0.4f}, {4, 0.1f}});
  const auto bottom_swap =
      Ranking({{1, 1.0f}, {2, 0.7f}, {4, 0.1f}, {3, 0.4f}});
  const double top = NdcgAtK(truth, top_swap, 4);
  const double bottom = NdcgAtK(truth, bottom_swap, 4);
  EXPECT_LT(top, bottom);
  EXPECT_LT(bottom, 1.0);
}

TEST(NdcgTest, MissingTailLowersScore) {
  const auto truth = Ranking({{1, 1.0f}, {2, 0.8f}, {3, 0.6f}});
  const auto candidate = Ranking({{1, 1.0f}});
  const double ndcg = NdcgAtK(truth, candidate, 3);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LT(ndcg, 1.0);
}

TEST(NdcgTest, KTruncatesBothSides) {
  const auto truth = Ranking({{1, 1.0f}, {2, 0.8f}, {3, 0.6f}});
  const auto candidate = Ranking({{1, 1.0f}, {9, 0.9f}, {3, 0.6f}});
  // At k=1 the candidate's top item matches the ideal exactly.
  EXPECT_DOUBLE_EQ(NdcgAtK(truth, candidate, 1), 1.0);
  EXPECT_LT(NdcgAtK(truth, candidate, 3), 1.0);
}

TEST(NdcgTest, HandComputedValue) {
  const auto truth = Ranking({{1, 1.0f}, {2, 0.5f}});
  const auto candidate = Ranking({{2, 0.5f}, {1, 1.0f}});
  const double dcg = 0.5 / std::log2(2.0) + 1.0 / std::log2(3.0);
  const double ideal = 1.0 / std::log2(2.0) + 0.5 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(truth, candidate, 2), dcg / ideal, 1e-12);
}

TEST(NdcgTest, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(NdcgAtK({}, Ranking({{1, 1.0f}}), 5), 1.0);
}

TEST(NdcgTest, EmptyCandidateIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK(Ranking({{1, 1.0f}}), {}, 5), 0.0);
}

}  // namespace
}  // namespace amici
