#include "workload/dataset_io.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/graph_io.h"
#include "gtest/gtest.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::string(::testing::TempDir()) + "/amici_dataset";
    std::remove((directory_ + "/graph.amig").c_str());
    std::remove((directory_ + "/items.amis").c_str());
    std::remove((directory_ + "/tags.amid").c_str());
    (void)std::system(("mkdir -p " + directory_).c_str());
  }

  void TearDown() override {
    std::remove((directory_ + "/graph.amig").c_str());
    std::remove((directory_ + "/items.amis").c_str());
    std::remove((directory_ + "/tags.amid").c_str());
  }

  std::string directory_;
};

TEST_F(DatasetIoTest, RoundTripsGeneratedDataset) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.num_tags = 120;
  const Dataset original = GenerateDataset(config).value();
  ASSERT_TRUE(SaveDataset(original, directory_).ok());

  const auto loaded = LoadDataset(directory_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph.neighbors(), original.graph.neighbors());
  ASSERT_EQ(loaded.value().store.num_items(), original.store.num_items());
  for (ItemId i = 0; i < original.store.num_items(); ++i) {
    EXPECT_EQ(loaded.value().store.owner(i), original.store.owner(i));
    EXPECT_EQ(loaded.value().store.quality(i), original.store.quality(i));
  }
  EXPECT_EQ(loaded.value().tags.size(), original.tags.size());
}

TEST_F(DatasetIoTest, MissingDirectoryFails) {
  const auto loaded = LoadDataset("/nonexistent/amici");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetIoTest, MissingComponentFileFails) {
  DatasetConfig config = SmallDataset();
  config.num_users = 100;
  const Dataset original = GenerateDataset(config).value();
  ASSERT_TRUE(SaveDataset(original, directory_).ok());
  std::remove((directory_ + "/items.amis").c_str());
  EXPECT_FALSE(LoadDataset(directory_).ok());
}

TEST_F(DatasetIoTest, CrossFileConsistencyChecked) {
  // Save a dataset, then overwrite the graph with a smaller one so item
  // owners fall outside the user universe.
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  const Dataset original = GenerateDataset(config).value();
  ASSERT_TRUE(SaveDataset(original, directory_).ok());

  DatasetConfig tiny = SmallDataset();
  tiny.num_users = 2;
  tiny.items_per_user = 1.0;
  const Dataset small = GenerateDataset(tiny).value();
  ASSERT_TRUE(SaveGraph(small.graph, directory_ + "/graph.amig").ok());

  const auto loaded = LoadDataset(directory_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace amici
