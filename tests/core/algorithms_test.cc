#include <memory>
#include <vector>

#include "core/content_first_ta.h"
#include "core/exhaustive_scan.h"
#include "core/hybrid_adaptive.h"
#include "core/merge_scan.h"
#include "core/scorer.h"
#include "core/social_first.h"
#include "gtest/gtest.h"
#include "index/index_builder.h"
#include "proximity/ppr_forward_push.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

/// Shared randomized corpus + the machinery to run any algorithm on it.
class AlgorithmsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config = SmallDataset();
    config.num_users = 600;
    config.items_per_user = 4.0;
    config.num_tags = 300;
    config.geo_fraction = 0.0;
    dataset_ = new Dataset(GenerateDataset(config).value());
    indexes_ = new BuiltIndexes(
        BuildIndexes(dataset_->store, dataset_->graph.num_users()).value());
  }

  static void TearDownTestSuite() {
    delete indexes_;
    delete dataset_;
    indexes_ = nullptr;
    dataset_ = nullptr;
  }

  QueryContext MakeContext(const SocialQuery& query,
                           const ProximityVector& proximity) {
    QueryContext ctx;
    ctx.graph = &dataset_->graph;
    ctx.store = &dataset_->store;
    ctx.inverted = &indexes_->inverted;
    ctx.social = &indexes_->social;
    ctx.proximity = &proximity;
    ctx.query = &query;
    ctx.index_horizon = static_cast<ItemId>(dataset_->store.num_items());
    return ctx;
  }

  /// Asserts `actual` is a valid exact top-k: same size and identical
  /// rank-by-rank scores as the oracle.
  void ExpectExactTopK(const std::vector<ScoredItem>& oracle,
                       const std::vector<ScoredItem>& actual,
                       const std::string& label) {
    ASSERT_EQ(actual.size(), oracle.size()) << label;
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_NEAR(actual[i].score, oracle[i].score, 1e-5)
          << label << " rank " << i;
    }
  }

  static Dataset* dataset_;
  static BuiltIndexes* indexes_;
};

Dataset* AlgorithmsTest::dataset_ = nullptr;
BuiltIndexes* AlgorithmsTest::indexes_ = nullptr;

TEST_F(AlgorithmsTest, AllAlgorithmsAgreeAcrossQueryMix) {
  const PprForwardPush proximity_model(0.15, 1e-5);
  QueryWorkloadConfig workload;
  workload.num_queries = 40;
  workload.seed = 101;
  workload.max_tags_per_query = 3;

  const ExhaustiveScan oracle;
  const MergeScan merge;
  const ContentFirstTa content_first;
  const SocialFirst social_first;
  const HybridAdaptive hybrid;
  const std::vector<const SearchAlgorithm*> candidates{
      &merge, &content_first, &social_first, &hybrid};

  for (const double alpha : {0.0, 0.3, 0.7, 1.0}) {
    QueryWorkloadConfig config = workload;
    config.alpha = alpha;
    const auto queries = GenerateQueries(*dataset_, config);
    ASSERT_TRUE(queries.ok());
    for (const SocialQuery& query : queries.value()) {
      const ProximityVector proximity =
          proximity_model.Compute(dataset_->graph, query.user);
      const QueryContext ctx = MakeContext(query, proximity);
      SearchStats stats;
      const auto expected = oracle.Search(ctx, &stats);
      ASSERT_TRUE(expected.ok());
      for (const SearchAlgorithm* algorithm : candidates) {
        const auto actual = algorithm->Search(ctx, &stats);
        ASSERT_TRUE(actual.ok())
            << algorithm->name() << ": " << actual.status().ToString();
        ExpectExactTopK(expected.value(), actual.value(),
                        std::string(algorithm->name()) + " alpha=" +
                            std::to_string(alpha));
      }
    }
  }
}

TEST_F(AlgorithmsTest, AllModeAgreesWithOracle) {
  const PprForwardPush proximity_model(0.15, 1e-5);
  QueryWorkloadConfig config;
  config.num_queries = 30;
  config.mode = MatchMode::kAll;
  config.max_tags_per_query = 2;
  config.alpha = 0.5;
  config.seed = 202;
  const auto queries = GenerateQueries(*dataset_, config);
  ASSERT_TRUE(queries.ok());

  const ExhaustiveScan oracle;
  const MergeScan merge;
  const HybridAdaptive hybrid;
  for (const SocialQuery& query : queries.value()) {
    const ProximityVector proximity =
        proximity_model.Compute(dataset_->graph, query.user);
    const QueryContext ctx = MakeContext(query, proximity);
    SearchStats stats;
    const auto expected = oracle.Search(ctx, &stats);
    ASSERT_TRUE(expected.ok());
    for (const SearchAlgorithm* algorithm :
         std::vector<const SearchAlgorithm*>{&merge, &hybrid}) {
      const auto actual = algorithm->Search(ctx, &stats);
      ASSERT_TRUE(actual.ok()) << algorithm->name();
      ExpectExactTopK(expected.value(), actual.value(),
                      std::string(algorithm->name()) + " kAll");
    }
  }
}

TEST_F(AlgorithmsTest, HybridDoesLessWorkThanExhaustiveCorpusScan) {
  const PprForwardPush proximity_model(0.15, 1e-5);
  SocialQuery query;
  query.user = 5;
  query.tags = {1};
  query.k = 10;
  query.alpha = 0.5;
  NormalizeQuery(&query);
  const ProximityVector proximity =
      proximity_model.Compute(dataset_->graph, query.user);
  const QueryContext ctx = MakeContext(query, proximity);

  SearchStats hybrid_stats;
  const HybridAdaptive hybrid;
  ASSERT_TRUE(hybrid.Search(ctx, &hybrid_stats).ok());
  EXPECT_LT(hybrid_stats.aggregation.candidates_scored,
            dataset_->store.num_items());
}

TEST_F(AlgorithmsTest, UnknownTagYieldsSocialOnlyResults) {
  const PprForwardPush proximity_model(0.15, 1e-5);
  SocialQuery query;
  query.user = 10;
  query.tags = {static_cast<TagId>(dataset_->tags.size() + 1000)};
  query.k = 5;
  query.alpha = 0.6;
  const ProximityVector proximity =
      proximity_model.Compute(dataset_->graph, query.user);
  const QueryContext ctx = MakeContext(query, proximity);

  const ExhaustiveScan oracle;
  const HybridAdaptive hybrid;
  SearchStats stats;
  const auto expected = oracle.Search(ctx, &stats);
  const auto actual = hybrid.Search(ctx, &stats);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ExpectExactTopK(expected.value(), actual.value(), "unknown-tag");
  // With a tag nobody uses, every result score is purely social.
  for (const auto& entry : actual.value()) {
    EXPECT_GT(entry.score, 0.0f);
  }
}

TEST_F(AlgorithmsTest, TaRequiresImpactOrderedLists) {
  InvertedIndex::Options options;
  options.build_impact_ordered = false;
  const auto lean =
      BuildIndexes(dataset_->store, dataset_->graph.num_users(), options);
  ASSERT_TRUE(lean.ok());

  const PprForwardPush proximity_model;
  SocialQuery query;
  query.user = 0;
  query.tags = {1};
  query.k = 3;
  query.alpha = 0.5;
  const ProximityVector proximity =
      proximity_model.Compute(dataset_->graph, query.user);
  QueryContext ctx = MakeContext(query, proximity);
  ctx.inverted = &lean.value().inverted;
  ctx.social = &lean.value().social;

  SearchStats stats;
  const HybridAdaptive hybrid;
  const auto result = hybrid.Search(ctx, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  // alpha == 1 needs no content lists and must still work.
  SocialQuery social_only = query;
  social_only.alpha = 1.0;
  ctx.query = &social_only;
  EXPECT_TRUE(hybrid.Search(ctx, &stats).ok());
}

TEST_F(AlgorithmsTest, AllModeWithUnusedTagYieldsEmpty) {
  // AND semantics with a tag nobody carries: the eligible set is empty,
  // so every algorithm must return nothing.
  const PprForwardPush proximity_model;
  SocialQuery query;
  query.user = 2;
  query.tags = {0, static_cast<TagId>(dataset_->tags.size() + 99)};
  query.k = 5;
  query.alpha = 0.5;
  query.mode = MatchMode::kAll;
  const ProximityVector proximity =
      proximity_model.Compute(dataset_->graph, query.user);
  const QueryContext ctx = MakeContext(query, proximity);

  SearchStats stats;
  const ExhaustiveScan oracle;
  const MergeScan merge;
  const HybridAdaptive hybrid;
  for (const SearchAlgorithm* algorithm :
       std::vector<const SearchAlgorithm*>{&oracle, &merge, &hybrid}) {
    const auto result = algorithm->Search(ctx, &stats);
    ASSERT_TRUE(result.ok()) << algorithm->name();
    EXPECT_TRUE(result.value().empty()) << algorithm->name();
  }
}

TEST_F(AlgorithmsTest, SingleUserCorpusAlphaOne) {
  // alpha = 1 ranks purely socially; only reachable owners (plus self)
  // can appear, and scores must be proximity values.
  const PprForwardPush proximity_model;
  SocialQuery query;
  query.user = 3;
  query.tags = {0};
  query.k = 20;
  query.alpha = 1.0;
  const ProximityVector proximity =
      proximity_model.Compute(dataset_->graph, query.user);
  const QueryContext ctx = MakeContext(query, proximity);

  SearchStats stats;
  const HybridAdaptive hybrid;
  const auto result = hybrid.Search(ctx, &stats);
  ASSERT_TRUE(result.ok());
  for (const ScoredItem& entry : result.value()) {
    const UserId owner = dataset_->store.owner(entry.item);
    const double expected =
        owner == query.user ? 1.0 : proximity.Proximity(owner);
    EXPECT_NEAR(entry.score, expected, 1e-6);
  }
}

TEST_F(AlgorithmsTest, StatsAreReported) {
  const PprForwardPush proximity_model;
  SocialQuery query;
  query.user = 1;
  query.tags = {0, 1};
  query.k = 5;
  query.alpha = 0.4;
  const ProximityVector proximity =
      proximity_model.Compute(dataset_->graph, query.user);
  const QueryContext ctx = MakeContext(query, proximity);

  SearchStats exhaustive_stats;
  const ExhaustiveScan oracle;
  ASSERT_TRUE(oracle.Search(ctx, &exhaustive_stats).ok());
  EXPECT_EQ(exhaustive_stats.items_considered, dataset_->store.num_items());

  SearchStats hybrid_stats;
  const HybridAdaptive hybrid;
  ASSERT_TRUE(hybrid.Search(ctx, &hybrid_stats).ok());
  EXPECT_GT(hybrid_stats.aggregation.sorted_accesses, 0u);
}

}  // namespace
}  // namespace amici
