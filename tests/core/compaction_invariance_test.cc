// The acceptance property of incremental (LSM-style) compaction: an
// engine whose Compact() MERGES the tail into shared posting lists is
// indistinguishable — bit-identical responses, not merely equivalent —
// from a twin engine that always REBUILDS its indexes from scratch,
// under randomized interleavings of AddItems batches, friendship edits
// and Compacts, on the local backend and on 2- and 4-shard services.
//
// Why bit-identical is achievable: a merged posting list / owner bucket
// / grid cell holds exactly the postings a rebuild would produce (the
// (quality desc, item asc) and document orders are strict total orders,
// and tail ids strictly exceed indexed ids), and TopKHeap's (score, id)
// tie-break makes result selection independent of enumeration order.
//
// Also covered here: the O(tail + touched lists) contract itself — an
// incremental Compact on a small tail reports lists_touched bounded by
// the tail's distinct tags/owners and SHARES every untouched list
// pointer-identically with the previous snapshot.

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 250;
  config.items_per_user = 4.0;
  config.num_tags = 120;
  config.geo_fraction = 0.3;
  config.seed = seed;
  return config;
}

/// Builds one backend over the (deterministically regenerated) dataset
/// with the given forced compaction mode; num_shards == 0 selects the
/// local backend.
std::unique_ptr<SearchService> BuildService(const DatasetConfig& config,
                                            size_t num_shards,
                                            CompactionMode mode) {
  Dataset dataset = GenerateDataset(config).value();
  if (num_shards == 0) {
    LocalSearchService::Options options;
    options.engine.compaction_mode = mode;
    auto service = LocalSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }
  ShardedSearchService::Options options;
  options.num_shards = num_shards;
  options.engine.compaction_mode = mode;
  auto service = ShardedSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

/// The probe mix: plain blended queries, algorithm-hinted ones, a geo
/// filter, owner-diversified top-k and tag-less pure-social feeds.
std::vector<SearchRequest> BuildProbes(const DatasetConfig& config) {
  Dataset workload_view = GenerateDataset(config).value();
  std::vector<SearchRequest> probes;

  QueryWorkloadConfig plain;
  plain.num_queries = 8;
  plain.seed = config.seed * 31 + 1;
  const std::vector<SocialQuery> plain_queries =
      GenerateQueries(workload_view, plain).value();
  for (const SocialQuery& query : plain_queries) {
    SearchRequest request;
    request.query = query;
    probes.push_back(request);
  }

  QueryWorkloadConfig geo;
  geo.num_queries = 4;
  geo.with_geo_filter = true;
  geo.radius_km = 25.0;
  geo.seed = config.seed * 31 + 2;
  const std::vector<SocialQuery> geo_queries =
      GenerateQueries(workload_view, geo).value();
  for (const SocialQuery& query : geo_queries) {
    SearchRequest request;
    request.query = query;
    probes.push_back(request);
  }

  Rng rng(config.seed * 31 + 3);
  for (size_t i = 0; i < 8; ++i) {
    SearchRequest request = probes[i];
    request.query.alpha = 0.2 + 0.6 * rng.UniformDouble();
    request.query.k = 1 + rng.UniformIndex(15);
    request.algorithm = rng.Bernoulli(0.5) ? AlgorithmId::kMergeScan
                                           : AlgorithmId::kNra;
    probes.push_back(request);
    SearchRequest diverse = probes[i];
    diverse.max_per_owner = 1 + rng.UniformIndex(3);
    probes.push_back(diverse);
  }
  for (const UserId user : {UserId{5}, UserId{77}}) {
    SearchRequest feed;
    feed.query.user = user;
    feed.query.alpha = 1.0;
    feed.query.k = 10;
    probes.push_back(feed);
  }
  return probes;
}

/// Twin responses must agree EXACTLY: same backend, same corpus, same
/// code — the only difference is merged vs rebuilt index representation,
/// whose contents are bit-identical by construction.
void ExpectIdenticalResponses(SearchService* merge_twin,
                              SearchService* rebuild_twin,
                              std::span<const SearchRequest> probes,
                              const std::string& label) {
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto want = rebuild_twin->Search(probes[i]);
    const auto got = merge_twin->Search(probes[i]);
    ASSERT_EQ(want.ok(), got.ok())
        << label << " probe " << i << ": " << want.status().ToString()
        << " vs " << got.status().ToString();
    if (!want.ok()) continue;
    ASSERT_EQ(want.value().items.size(), got.value().items.size())
        << label << " probe " << i;
    for (size_t r = 0; r < want.value().items.size(); ++r) {
      EXPECT_EQ(want.value().items[r].item, got.value().items[r].item)
          << label << " probe " << i << " rank " << r;
      EXPECT_EQ(want.value().items[r].score, got.value().items[r].score)
          << label << " probe " << i << " rank " << r;
    }
  }
  // Tag suggestions ride the same indexes; they must agree too.
  for (const UserId user : {UserId{5}, UserId{77}}) {
    const std::vector<TagId> seeds{1, 7};
    const auto want = rebuild_twin->SuggestTags(user, seeds);
    const auto got = merge_twin->SuggestTags(user, seeds);
    ASSERT_EQ(want.ok(), got.ok()) << label;
    if (!want.ok()) continue;
    ASSERT_EQ(want.value().size(), got.value().size()) << label;
    for (size_t i = 0; i < want.value().size(); ++i) {
      EXPECT_EQ(want.value()[i].tag, got.value()[i].tag) << label;
      EXPECT_EQ(want.value()[i].weight, got.value()[i].weight) << label;
      EXPECT_EQ(want.value()[i].support, got.value()[i].support) << label;
    }
  }
}

/// The randomized workload: interleaved ingest batches, friendship
/// flips and Compacts, applied IDENTICALLY to both twins; after every
/// Compact the twins' probe responses must be bit-identical.
void RunInvarianceWorkload(size_t num_shards, uint64_t seed) {
  const DatasetConfig config = TestConfig(seed);
  auto merge_twin =
      BuildService(config, num_shards, CompactionMode::kAlwaysMerge);
  auto rebuild_twin =
      BuildService(config, num_shards, CompactionMode::kAlwaysRebuild);
  const std::vector<SearchRequest> probes = BuildProbes(config);
  const std::string label =
      (num_shards == 0 ? std::string("local")
                       : "sharded/" + std::to_string(num_shards)) +
      " seed " + std::to_string(seed);

  ExpectIdenticalResponses(merge_twin.get(), rebuild_twin.get(), probes,
                           label + " fresh");

  Rng rng(seed * 17 + 9);
  const size_t num_users = merge_twin->num_users();
  for (int round = 0; round < 6; ++round) {
    const std::string round_label =
        label + " round " + std::to_string(round);
    // Ingest a random batch. Tags may exceed the initial universe (the
    // merge path must grow the tag space exactly like a rebuild); some
    // items carry geo so grid cells merge too.
    std::vector<Item> batch;
    const size_t batch_size = 5 + rng.UniformIndex(35);
    for (size_t i = 0; i < batch_size; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
      item.tags = {static_cast<TagId>(rng.UniformIndex(140))};
      if (rng.Bernoulli(0.4)) {
        item.tags.push_back(static_cast<TagId>(rng.UniformIndex(140)));
      }
      item.quality = static_cast<float>(rng.UniformDouble());
      if (rng.Bernoulli(0.3)) {
        item.has_geo = true;
        item.latitude = static_cast<float>(rng.UniformDouble() - 0.5);
        item.longitude = static_cast<float>(rng.UniformDouble() - 0.5);
      }
      batch.push_back(item);
    }
    const auto merge_ids = merge_twin->AddItems(batch);
    const auto rebuild_ids = rebuild_twin->AddItems(batch);
    ASSERT_TRUE(merge_ids.ok()) << round_label;
    ASSERT_TRUE(rebuild_ids.ok()) << round_label;
    EXPECT_EQ(merge_ids.value(), rebuild_ids.value()) << round_label;

    // A friendship flip (add or remove), identical on both twins.
    const UserId u = static_cast<UserId>(rng.UniformIndex(num_users));
    const UserId v = static_cast<UserId>(rng.UniformIndex(num_users));
    if (u != v) {
      if (rng.Bernoulli(0.5)) {
        EXPECT_EQ(merge_twin->AddFriendship(u, v).code(),
                  rebuild_twin->AddFriendship(u, v).code())
            << round_label;
      } else {
        EXPECT_EQ(merge_twin->RemoveFriendship(u, v).code(),
                  rebuild_twin->RemoveFriendship(u, v).code())
            << round_label;
      }
    }

    // Occasionally probe mid-tail (both twins carry the same tail).
    if (round % 2 == 1) {
      ExpectIdenticalResponses(merge_twin.get(), rebuild_twin.get(), probes,
                               round_label + " pre-compact");
    }

    // Compact both — the merge twin folds incrementally, the rebuild
    // twin from scratch — and the twins must stay indistinguishable.
    ASSERT_TRUE(merge_twin->Compact().ok()) << round_label;
    ASSERT_TRUE(rebuild_twin->Compact().ok()) << round_label;
    EXPECT_EQ(merge_twin->unindexed_items(), 0u) << round_label;
    EXPECT_EQ(rebuild_twin->unindexed_items(), 0u) << round_label;
    ExpectIdenticalResponses(merge_twin.get(), rebuild_twin.get(), probes,
                             round_label + " post-compact");
  }

  // The twins really took different paths: the merge twin's responses
  // report merge compactions, the rebuild twin's report none.
  const auto merged_response = merge_twin->Search(probes[0]);
  const auto rebuilt_response = rebuild_twin->Search(probes[0]);
  ASSERT_TRUE(merged_response.ok());
  ASSERT_TRUE(rebuilt_response.ok());
  EXPECT_GT(merged_response.value().stats.compactions_merge, 0u) << label;
  EXPECT_EQ(merged_response.value().stats.compactions_rebuild, 0u) << label;
  EXPECT_GT(rebuilt_response.value().stats.compactions_rebuild, 0u) << label;
  EXPECT_EQ(rebuilt_response.value().stats.compactions_merge, 0u) << label;
  EXPECT_GT(merged_response.value().stats.compaction_items_merged, 0u)
      << label;
  // StatsSummary surfaces the mode split.
  EXPECT_NE(merge_twin->StatsSummary().find("merge"), std::string::npos);
}

TEST(CompactionInvarianceTest, LocalMergeTwinMatchesRebuildTwin) {
  RunInvarianceWorkload(0, 3u);
  RunInvarianceWorkload(0, 23u);
}

TEST(CompactionInvarianceTest, TwoShardMergeTwinMatchesRebuildTwin) {
  RunInvarianceWorkload(2, 7u);
}

TEST(CompactionInvarianceTest, FourShardMergeTwinMatchesRebuildTwin) {
  RunInvarianceWorkload(4, 13u);
}

// ---------------------------------------------------------------------
// The O(tail + touched lists) contract at the engine level: a small
// tail's incremental Compact rebuilds only tail-referenced lists, shares
// the rest pointer-identically, and reports it through the stats.
// ---------------------------------------------------------------------

TEST(CompactionInvarianceTest, IncrementalCompactTouchesOnlyTailLists) {
  DatasetConfig config = TestConfig(41u);
  Dataset dataset = GenerateDataset(config).value();
  auto built = SocialSearchEngine::Build(std::move(dataset.graph),
                                         std::move(dataset.store), {});
  ASSERT_TRUE(built.ok());
  SocialSearchEngine* engine = built.value().get();

  const auto before = engine->snapshot();
  ASSERT_EQ(before->unindexed_items(), 0u);

  // A 3-item tail referencing exactly 2 tags and 2 owners, no geo.
  auto tail_item = [](UserId owner, TagId tag, float quality) {
    Item item;
    item.owner = owner;
    item.tags = {tag};
    item.quality = quality;
    return item;
  };
  ASSERT_TRUE(engine->AddItem(tail_item(1, 3, 0.9f)).ok());
  ASSERT_TRUE(engine->AddItem(tail_item(1, 3, 0.1f)).ok());
  ASSERT_TRUE(engine->AddItem(tail_item(2, 8, 0.5f)).ok());

  CompactionOutcome outcome;
  ASSERT_TRUE(engine->Compact(CompactionMode::kAlwaysMerge, &outcome).ok());
  EXPECT_TRUE(outcome.merged);
  EXPECT_EQ(outcome.items_merged, 3u);
  // Exactly tags {3, 8} and owners {1, 2}; no geo cells.
  EXPECT_EQ(outcome.lists_touched, 4u);
  EXPECT_EQ(engine->stats().last_compaction_mode(), "merge");
  EXPECT_EQ(engine->stats().last_items_merged(), 3u);
  EXPECT_EQ(engine->stats().last_lists_touched(), 4u);
  EXPECT_EQ(engine->stats().merge_compactions(), 1u);

  const auto after = engine->snapshot();
  EXPECT_EQ(after->unindexed_items(), 0u);
  const InvertedIndex& old_inverted = before->indexes->inverted;
  const InvertedIndex& new_inverted = after->indexes->inverted;
  // Touched tags got NEW lists...
  EXPECT_NE(new_inverted.PostingsHandle(3), old_inverted.PostingsHandle(3));
  EXPECT_NE(new_inverted.PostingsHandle(8), old_inverted.PostingsHandle(8));
  // ...every other tag's list is shared pointer-identically.
  size_t shared_lists = 0;
  for (TagId tag = 0; tag < old_inverted.num_tags(); ++tag) {
    if (tag == 3 || tag == 8) continue;
    EXPECT_EQ(new_inverted.PostingsHandle(tag),
              old_inverted.PostingsHandle(tag))
        << "tag " << tag;
    if (new_inverted.PostingsHandle(tag) != nullptr) ++shared_lists;
  }
  EXPECT_GT(shared_lists, 0u);
  // Same for owner buckets: only users 1 and 2 were rebuilt.
  const SocialIndex& old_social = before->indexes->social;
  const SocialIndex& new_social = after->indexes->social;
  EXPECT_NE(new_social.BucketHandle(1), old_social.BucketHandle(1));
  EXPECT_NE(new_social.BucketHandle(2), old_social.BucketHandle(2));
  for (UserId user = 3; user < 20; ++user) {
    EXPECT_EQ(new_social.BucketHandle(user), old_social.BucketHandle(user))
        << "user " << user;
  }
}

TEST(CompactionInvarianceTest, AutoModePicksMergeForSmallTailsOnly) {
  DatasetConfig config = TestConfig(43u);
  config.geo_fraction = 0.0;
  Dataset dataset = GenerateDataset(config).value();
  auto built = SocialSearchEngine::Build(std::move(dataset.graph),
                                         std::move(dataset.store), {});
  ASSERT_TRUE(built.ok());
  SocialSearchEngine* engine = built.value().get();
  const size_t indexed = engine->snapshot()->index_horizon;
  ASSERT_GT(indexed, 40u);

  auto add_items = [&](size_t count) {
    Rng rng(count);
    for (size_t i = 0; i < count; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(250));
      item.tags = {static_cast<TagId>(rng.UniformIndex(120))};
      item.quality = static_cast<float>(rng.UniformDouble());
      ASSERT_TRUE(engine->AddItem(item).ok());
    }
  };

  // Small tail (well under the default 25% ratio): kAuto merges.
  add_items(indexed / 10);
  CompactionOutcome outcome;
  ASSERT_TRUE(engine->Compact(&outcome).ok());
  EXPECT_TRUE(outcome.merged);

  // Huge tail (several times the indexed base): kAuto rebuilds.
  add_items(engine->snapshot()->index_horizon * 2);
  ASSERT_TRUE(engine->Compact(&outcome).ok());
  EXPECT_FALSE(outcome.merged);
  EXPECT_EQ(engine->stats().last_compaction_mode(), "rebuild");
  EXPECT_EQ(engine->stats().merge_compactions(), 1u);
  EXPECT_EQ(engine->stats().rebuild_compactions(), 1u);
}

}  // namespace
}  // namespace amici
