#include "core/engine.h"

#include <memory>

#include "gtest/gtest.h"
#include "proximity/hop_decay.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static std::unique_ptr<SocialSearchEngine> MakeEngine(
      SocialSearchEngine::Options options = {}) {
    DatasetConfig config = SmallDataset();
    config.num_users = 400;
    config.num_tags = 200;
    config.geo_fraction = 0.4;
    Dataset dataset = GenerateDataset(config).value();
    auto engine = SocialSearchEngine::Build(
        std::move(dataset.graph), std::move(dataset.store),
        std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine).value();
  }

  static SocialQuery MakeQuery(UserId user = 3) {
    SocialQuery query;
    query.user = user;
    query.tags = {0, 1};
    query.k = 5;
    query.alpha = 0.5;
    return query;
  }
};

TEST_F(EngineTest, BuildPopulatesIndexes) {
  const auto engine = MakeEngine();
  EXPECT_GT(engine->store().num_items(), 0u);
  EXPECT_GT(engine->inverted_index().num_tags(), 0u);
  EXPECT_EQ(engine->social_index().num_entries(),
            engine->store().num_items());
  EXPECT_GT(engine->last_build_stats().inverted_bytes, 0u);
  EXPECT_EQ(engine->unindexed_items(), 0u);
}

TEST_F(EngineTest, DefaultProximityModelIsForwardPush) {
  const auto engine = MakeEngine();
  EXPECT_EQ(engine->proximity_model().name(), "ppr-push");
}

TEST_F(EngineTest, CustomProximityModelIsUsed) {
  SocialSearchEngine::Options options;
  options.proximity_model = std::make_shared<HopDecayProximity>(0.5, 2);
  const auto engine = MakeEngine(std::move(options));
  EXPECT_EQ(engine->proximity_model().name(), "hop-decay");
}

TEST_F(EngineTest, QueryReturnsScoredDescendingResults) {
  auto engine = MakeEngine();
  const auto result = engine->Query(MakeQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result.value().items.size(), 5u);
  EXPECT_EQ(result.value().algorithm, "hybrid");
  EXPECT_GE(result.value().elapsed_ms, 0.0);
  const auto& items = result.value().items;
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i - 1].score, items[i].score);
  }
}

TEST_F(EngineTest, AllAlgorithmsAgreeThroughTheFacade) {
  auto engine = MakeEngine();
  const SocialQuery query = MakeQuery(7);
  const auto expected =
      engine->Query(query, AlgorithmId::kExhaustive);
  ASSERT_TRUE(expected.ok());
  for (const AlgorithmId id :
       {AlgorithmId::kMergeScan, AlgorithmId::kContentFirst,
        AlgorithmId::kSocialFirst, AlgorithmId::kHybrid,
        AlgorithmId::kNra}) {
    const auto actual = engine->Query(query, id);
    ASSERT_TRUE(actual.ok()) << AlgorithmName(id);
    ASSERT_EQ(actual.value().items.size(), expected.value().items.size());
    for (size_t i = 0; i < actual.value().items.size(); ++i) {
      EXPECT_NEAR(actual.value().items[i].score,
                  expected.value().items[i].score, 1e-5)
          << AlgorithmName(id) << " rank " << i;
    }
  }
}

TEST_F(EngineTest, InvalidQueryIsRejected) {
  auto engine = MakeEngine();
  SocialQuery query = MakeQuery();
  query.k = 0;
  EXPECT_FALSE(engine->Query(query).ok());
  query = MakeQuery();
  query.user = static_cast<UserId>(engine->graph().num_users());
  EXPECT_FALSE(engine->Query(query).ok());
}

TEST_F(EngineTest, GeoQueryFiltersByRadius) {
  auto engine = MakeEngine();
  // Anchor at some geo item.
  ItemId anchor = kInvalidItemId;
  for (ItemId i = 0; i < engine->store().num_items(); ++i) {
    if (engine->store().has_geo(i)) {
      anchor = i;
      break;
    }
  }
  ASSERT_NE(anchor, kInvalidItemId);
  SocialQuery query = MakeQuery();
  query.has_geo_filter = true;
  query.latitude = engine->store().latitude(anchor);
  query.longitude = engine->store().longitude(anchor);
  query.radius_km = 15.0f;
  query.alpha = 0.3;

  const auto expected = engine->Query(query, AlgorithmId::kExhaustive);
  ASSERT_TRUE(expected.ok());
  for (const AlgorithmId id :
       {AlgorithmId::kHybrid, AlgorithmId::kGeoGrid, AlgorithmId::kNra}) {
    const auto actual = engine->Query(query, id);
    ASSERT_TRUE(actual.ok()) << AlgorithmName(id);
    ASSERT_EQ(actual.value().items.size(), expected.value().items.size())
        << AlgorithmName(id);
    for (size_t i = 0; i < actual.value().items.size(); ++i) {
      EXPECT_NEAR(actual.value().items[i].score,
                  expected.value().items[i].score, 1e-5)
          << AlgorithmName(id) << " rank " << i;
    }
  }
}

TEST_F(EngineTest, GeoGridWithoutGeoFilterFails) {
  auto engine = MakeEngine();
  const auto result = engine->Query(MakeQuery(), AlgorithmId::kGeoGrid);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, StatsAccumulateAcrossQueries) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Query(MakeQuery(1)).ok());
  ASSERT_TRUE(engine->Query(MakeQuery(2)).ok());
  ASSERT_TRUE(engine->Query(MakeQuery(3), AlgorithmId::kExhaustive).ok());
  EXPECT_EQ(engine->stats().total_queries(), 3u);
  EXPECT_EQ(engine->stats().QueriesFor("hybrid"), 2u);
  EXPECT_EQ(engine->stats().QueriesFor("exhaustive"), 1u);
  EXPECT_FALSE(engine->stats().ToString().empty());
}

TEST_F(EngineTest, ProximityCacheHitsOnRepeatedUser) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Query(MakeQuery(9)).ok());
  ASSERT_TRUE(engine->Query(MakeQuery(9)).ok());
  EXPECT_GE(engine->proximity().stats().cache_hits, 1u);
}

TEST_F(EngineTest, AddItemGoesToTailAndStaysQueryable) {
  auto engine = MakeEngine();
  SocialQuery query = MakeQuery(4);
  query.alpha = 0.0;  // content only, to make the new item dominate
  query.tags = {0};
  query.k = 3;

  Item item;
  item.owner = 4;
  item.tags = {0};
  item.quality = 1.0f;  // maximal quality -> top content score
  const auto added = engine->AddItem(item);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(engine->unindexed_items(), 1u);

  const auto result = engine->Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().items.empty());
  EXPECT_EQ(result.value().items[0].item, added.value());

  // Compaction folds it into the indexes; result must be unchanged.
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_EQ(engine->unindexed_items(), 0u);
  const auto after = engine->Query(query);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after.value().items.empty());
  EXPECT_EQ(after.value().items[0].item, added.value());
}

TEST_F(EngineTest, AddItemRejectsForeignOwner) {
  auto engine = MakeEngine();
  Item item;
  item.owner = static_cast<UserId>(engine->graph().num_users() + 5);
  item.tags = {0};
  item.quality = 0.5f;
  EXPECT_FALSE(engine->AddItem(item).ok());
}

TEST_F(EngineTest, AddItemsBatchPublishesOnce) {
  auto engine = MakeEngine();
  const size_t before = engine->store().num_items();
  const auto snapshot_before = engine->snapshot();

  std::vector<Item> batch(25);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].owner = static_cast<UserId>(i % 50);
    batch[i].tags = {static_cast<TagId>(i % 7)};
    batch[i].quality = 0.4f;
  }
  const auto ids = engine->AddItems(batch);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids.value().size(), batch.size());
  for (size_t i = 0; i < ids.value().size(); ++i) {
    EXPECT_EQ(ids.value()[i], static_cast<ItemId>(before + i))
        << "batch ids must be dense, in batch order";
  }
  EXPECT_EQ(engine->store().num_items(), before + batch.size());
  EXPECT_EQ(engine->unindexed_items(), batch.size());
  // ONE publish for the whole batch: heavy components are shared with the
  // pre-batch generation, only the store bound advanced.
  const auto snapshot_after = engine->snapshot();
  EXPECT_NE(snapshot_before.get(), snapshot_after.get());
  EXPECT_EQ(snapshot_before->indexes.get(), snapshot_after->indexes.get());
  EXPECT_EQ(snapshot_before->graph.get(), snapshot_after->graph.get());

  // Batch items are queryable immediately (tail scan), exactly.
  SocialQuery query = MakeQuery();
  query.tags = {0};
  query.k = before + batch.size();
  const auto exhaustive = engine->Query(query, AlgorithmId::kExhaustive);
  const auto hybrid = engine->Query(query, AlgorithmId::kHybrid);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(hybrid.ok());
  ASSERT_EQ(exhaustive.value().items.size(), hybrid.value().items.size());
}

TEST_F(EngineTest, AddItemsBatchIsAllOrNothing) {
  auto engine = MakeEngine();
  const size_t before = engine->store().num_items();
  std::vector<Item> batch(4);
  for (auto& item : batch) {
    item.owner = 1;
    item.tags = {0};
    item.quality = 0.5f;
  }
  batch[3].owner = static_cast<UserId>(engine->graph().num_users() + 1);
  const auto rejected = engine->AddItems(batch);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->store().num_items(), before)
      << "a rejected batch must not leak a prefix into the store";

  batch[3].owner = 1;
  batch[3].quality = -0.5f;
  EXPECT_FALSE(engine->AddItems(batch).ok());
  EXPECT_EQ(engine->store().num_items(), before);

  const auto empty = engine->AddItems(std::span<const Item>());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST_F(EngineTest, AlgorithmNamesAreStable) {
  EXPECT_EQ(AlgorithmName(AlgorithmId::kExhaustive), "exhaustive");
  EXPECT_EQ(AlgorithmName(AlgorithmId::kMergeScan), "merge-scan");
  EXPECT_EQ(AlgorithmName(AlgorithmId::kContentFirst), "content-first");
  EXPECT_EQ(AlgorithmName(AlgorithmId::kSocialFirst), "social-first");
  EXPECT_EQ(AlgorithmName(AlgorithmId::kHybrid), "hybrid");
  EXPECT_EQ(AlgorithmName(AlgorithmId::kGeoGrid), "geo-grid");
  EXPECT_EQ(AlgorithmName(AlgorithmId::kNra), "nra");
}

}  // namespace
}  // namespace amici
