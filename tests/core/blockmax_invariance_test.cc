// The acceptance property of block-max traversal: enabling it changes
// WHICH blocks the query path decodes, never WHAT any query returns.
// Twin engines (and twin services, across shard counts) built over the
// identical corpus with enable_block_max on vs off must return
// bit-identical top-k — items AND scores — for every algorithm, match
// mode, blend, and k, before and after ingest + compaction.
//
// Why bit-identical is achievable: a block is skipped only when its
// decoded FLOAT bound says every posting in it scores strictly below the
// current k-th floor (minus kBlockMaxPruneSlack), so no item that could
// enter the heap — not even one tying the k-th score, where the
// (score desc, item asc) tie-break decides membership — is ever pruned.
// The surviving candidate stream reaches the heap in the same order, so
// the heap passes through identical states.

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

constexpr AlgorithmId kAlgorithms[] = {
    AlgorithmId::kExhaustive,  AlgorithmId::kMergeScan,
    AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
    AlgorithmId::kHybrid,       AlgorithmId::kNra,
};

/// Few tags over many items => posting lists long enough (df well past
/// block_size) that block-max has real blocks to prune; otherwise every
/// list is a single block and the "on" engine degenerates to "off".
DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 400;
  config.items_per_user = 6.0;
  config.num_tags = 40;
  config.geo_fraction = 0.3;
  config.seed = seed;
  return config;
}

SocialSearchEngine::Options EngineOptions(bool enable_block_max) {
  SocialSearchEngine::Options options;
  // Small blocks: ~8 postings each, so even mid-popularity tags span
  // several blocks and per-block bounds actually differ.
  options.index_options.posting_options.block_size = 8;
  options.index_options.posting_options.enable_block_max = enable_block_max;
  // Merge-style compaction exercises MergeFrom's block-max rebuild in the
  // post-compaction phase (rebuild compaction is covered by unit tests).
  options.compaction_mode = CompactionMode::kAlwaysMerge;
  return options;
}

std::unique_ptr<SocialSearchEngine> BuildEngine(const DatasetConfig& config,
                                                bool enable_block_max) {
  // The generator is deterministic: both twins consume identical corpora.
  Dataset dataset = GenerateDataset(config).value();
  auto engine =
      SocialSearchEngine::Build(std::move(dataset.graph),
                                std::move(dataset.store),
                                EngineOptions(enable_block_max));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// The query mix the property is asserted over: kAny and kAll tag
/// queries, blends from pure-content (alpha 0, where pruning bites
/// hardest) to the tag-less pure-social feed (alpha 1), and small k
/// (high floors => aggressive skipping).
std::vector<SocialQuery> BuildQueries(const DatasetConfig& config) {
  Dataset workload_view = GenerateDataset(config).value();
  std::vector<SocialQuery> queries;

  QueryWorkloadConfig any;
  any.num_queries = 10;
  any.seed = config.seed * 17 + 1;
  const std::vector<SocialQuery> any_queries =
      GenerateQueries(workload_view, any).value();
  queries.insert(queries.end(), any_queries.begin(), any_queries.end());

  QueryWorkloadConfig all;
  all.num_queries = 10;
  all.mode = MatchMode::kAll;
  all.max_tags_per_query = 2;
  all.seed = config.seed * 17 + 2;
  const std::vector<SocialQuery> all_queries =
      GenerateQueries(workload_view, all).value();
  queries.insert(queries.end(), all_queries.begin(), all_queries.end());

  // Blend / k sweep over copies of the generated mix.
  Rng rng(config.seed * 17 + 3);
  const size_t base = queries.size();
  for (size_t i = 0; i < base; i += 3) {
    SocialQuery query = queries[i];
    query.alpha = rng.Bernoulli(0.3) ? 0.0 : rng.UniformDouble();
    query.k = 1 + rng.UniformIndex(12);
    queries.push_back(query);
  }

  // Tag-less pure-social feeds (no posting traversal at all — block-max
  // must be a strict no-op here).
  for (const UserId user : {UserId{2}, UserId{77}}) {
    SocialQuery feed;
    feed.user = user;
    feed.alpha = 1.0;
    feed.k = 8;
    queries.push_back(feed);
  }
  return queries;
}

template <typename ResultT>
void ExpectSameItems(const ResultT& want, const ResultT& got,
                     const std::string& label) {
  ASSERT_EQ(want.ok(), got.ok())
      << label << ": " << want.status().ToString() << " vs "
      << got.status().ToString();
  if (!want.ok()) {
    EXPECT_EQ(want.status().code(), got.status().code()) << label;
    return;
  }
  const auto& expected = want.value().items;
  const auto& actual = got.value().items;
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    // Bit-identical, not merely close — see the file header.
    EXPECT_EQ(expected[i].item, actual[i].item) << label << " rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " rank " << i;
  }
}

TEST(BlockMaxInvarianceTest, EngineTwinsBitIdenticalAcrossAlgorithms) {
  for (const uint64_t seed : {17u, 31u}) {
    SCOPED_TRACE("dataset seed " + std::to_string(seed));
    const DatasetConfig config = TestConfig(seed);
    auto off = BuildEngine(config, /*enable_block_max=*/false);
    auto on = BuildEngine(config, /*enable_block_max=*/true);
    const std::vector<SocialQuery> queries = BuildQueries(config);

    uint64_t skipped_on = 0;
    uint64_t decoded_on = 0;
    uint64_t decoded_off = 0;
    for (const AlgorithmId algorithm : kAlgorithms) {
      for (size_t i = 0; i < queries.size(); ++i) {
        const auto want = off->Query(queries[i], algorithm);
        const auto got = on->Query(queries[i], algorithm);
        ExpectSameItems(want, got,
                        "algorithm " + std::to_string(int(algorithm)) +
                            " query " + std::to_string(i));
        if (got.ok()) {
          skipped_on += got.value().stats.aggregation.blocks_skipped;
          decoded_on += got.value().stats.aggregation.blocks_decoded;
        }
        if (want.ok()) {
          decoded_off += want.value().stats.aggregation.blocks_decoded;
        }
      }
    }
    // The twin property must not hold vacuously: the block-max engine has
    // to have actually pruned, and pruning has to have saved decodes.
    EXPECT_GT(skipped_on, 0u);
    EXPECT_LT(decoded_on, decoded_off);
  }
}

std::unique_ptr<SearchService> BuildService(const DatasetConfig& config,
                                            size_t num_shards,
                                            bool enable_block_max) {
  Dataset dataset = GenerateDataset(config).value();
  if (num_shards == 1) {
    LocalSearchService::Options options;
    options.engine = EngineOptions(enable_block_max);
    auto service = LocalSearchService::Build(
        std::move(dataset.graph), std::move(dataset.store), options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }
  ShardedSearchService::Options options;
  options.num_shards = num_shards;
  options.engine = EngineOptions(enable_block_max);
  auto service = ShardedSearchService::Build(
      std::move(dataset.graph), std::move(dataset.store),
      std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

TEST(BlockMaxInvarianceTest, ServiceTwinsMatchAcrossShardsAndMutations) {
  const uint64_t seed = 23;
  const DatasetConfig config = TestConfig(seed);
  const std::vector<SocialQuery> queries = BuildQueries(config);
  std::vector<SearchRequest> requests;
  Rng hint_rng(seed * 11 + 4);
  for (const SocialQuery& query : queries) {
    SearchRequest request;
    request.query = query;
    if (hint_rng.Bernoulli(0.5)) {
      request.algorithm = hint_rng.Bernoulli(0.5) ? AlgorithmId::kMergeScan
                                                  : AlgorithmId::kExhaustive;
    }
    requests.push_back(request);
  }

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    auto off = BuildService(config, shards, /*enable_block_max=*/false);
    auto on = BuildService(config, shards, /*enable_block_max=*/true);

    uint64_t skipped_on = 0;
    auto compare_all = [&](const std::string& phase) {
      for (size_t i = 0; i < requests.size(); ++i) {
        const auto want = off->Search(requests[i]);
        const auto got = on->Search(requests[i]);
        ExpectSameItems(want, got, phase + " request " + std::to_string(i));
        if (got.ok()) {
          skipped_on += got.value().stats.aggregation.blocks_skipped;
        }
      }
    };

    compare_all("fresh");

    // Mutations, applied identically to both twins: the tail is scanned
    // un-indexed (block-max must stay exact alongside the tail merge),
    // then compaction folds it through MergeFrom (kAlwaysMerge above).
    Rng rng(seed * 11 + 5);
    const size_t num_users = off->num_users();
    std::vector<Item> batch;
    for (int i = 0; i < 30; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
      item.tags = {static_cast<TagId>(rng.UniformIndex(40))};
      if (rng.Bernoulli(0.4)) {
        item.tags.push_back(static_cast<TagId>(rng.UniformIndex(40)));
      }
      item.quality = static_cast<float>(rng.UniformDouble());
      batch.push_back(item);
    }
    const auto off_ids = off->AddItems(batch);
    const auto on_ids = on->AddItems(batch);
    ASSERT_TRUE(off_ids.ok()) << off_ids.status().ToString();
    ASSERT_TRUE(on_ids.ok()) << on_ids.status().ToString();
    EXPECT_EQ(off_ids.value(), on_ids.value());

    compare_all("post-ingest");

    ASSERT_TRUE(off->Compact().ok());
    ASSERT_TRUE(on->Compact().ok());
    EXPECT_EQ(on->unindexed_items(), 0u);

    compare_all("post-compact");

    // The per-shard stats must have flowed through MergeSearchStats into
    // the response — and must show real pruning at every shard count.
    EXPECT_GT(skipped_on, 0u);
  }
}

}  // namespace
}  // namespace amici
