#include "core/engine_stats.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

SearchStats MakeStats(uint64_t sorted, uint64_t random, uint64_t items) {
  SearchStats stats;
  stats.aggregation.sorted_accesses = sorted;
  stats.aggregation.random_accesses = random;
  stats.items_considered = items;
  return stats;
}

TEST(EngineStatsTest, EmptyStats) {
  EngineStats stats;
  EXPECT_EQ(stats.total_queries(), 0u);
  EXPECT_EQ(stats.QueriesFor("hybrid"), 0u);
  EXPECT_EQ(stats.MeanLatencyMsFor("hybrid"), 0.0);
}

TEST(EngineStatsTest, AggregatesPerAlgorithm) {
  EngineStats stats;
  stats.RecordQuery("hybrid", 1.0, MakeStats(10, 5, 0));
  stats.RecordQuery("hybrid", 3.0, MakeStats(20, 15, 0));
  stats.RecordQuery("exhaustive", 8.0, MakeStats(0, 0, 1000));
  EXPECT_EQ(stats.total_queries(), 3u);
  EXPECT_EQ(stats.QueriesFor("hybrid"), 2u);
  EXPECT_EQ(stats.QueriesFor("exhaustive"), 1u);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMsFor("hybrid"), 2.0);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMsFor("exhaustive"), 8.0);
}

TEST(EngineStatsTest, ToStringListsEveryAlgorithm) {
  EngineStats stats;
  stats.RecordQuery("hybrid", 1.0, MakeStats(1, 1, 0));
  stats.RecordQuery("merge-scan", 2.0, MakeStats(0, 0, 50));
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("hybrid"), std::string::npos);
  EXPECT_NE(rendered.find("merge-scan"), std::string::npos);
  EXPECT_NE(rendered.find("50"), std::string::npos);
}

TEST(EngineStatsTest, ResetClears) {
  EngineStats stats;
  stats.RecordQuery("hybrid", 1.0, MakeStats(1, 1, 1));
  stats.Reset();
  EXPECT_EQ(stats.total_queries(), 0u);
}

TEST(EngineStatsTest, ConcurrentRecordingIsLossless) {
  EngineStats stats;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < 500; ++i) {
        stats.RecordQuery("hybrid", 0.5, MakeStats(1, 1, 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(stats.total_queries(), 4000u);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMsFor("hybrid"), 0.5);
}

}  // namespace
}  // namespace amici
