#include "core/engine_stats.h"

#include <thread>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

SearchStats MakeStats(uint64_t sorted, uint64_t random, uint64_t items) {
  SearchStats stats;
  stats.aggregation.sorted_accesses = sorted;
  stats.aggregation.random_accesses = random;
  stats.items_considered = items;
  return stats;
}

TEST(EngineStatsTest, EmptyStats) {
  EngineStats stats;
  EXPECT_EQ(stats.total_queries(), 0u);
  EXPECT_EQ(stats.QueriesFor("hybrid"), 0u);
  EXPECT_EQ(stats.MeanLatencyMsFor("hybrid"), 0.0);
}

TEST(EngineStatsTest, AggregatesPerAlgorithm) {
  EngineStats stats;
  stats.RecordQuery("hybrid", 1.0, MakeStats(10, 5, 0));
  stats.RecordQuery("hybrid", 3.0, MakeStats(20, 15, 0));
  stats.RecordQuery("exhaustive", 8.0, MakeStats(0, 0, 1000));
  EXPECT_EQ(stats.total_queries(), 3u);
  EXPECT_EQ(stats.QueriesFor("hybrid"), 2u);
  EXPECT_EQ(stats.QueriesFor("exhaustive"), 1u);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMsFor("hybrid"), 2.0);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMsFor("exhaustive"), 8.0);
}

TEST(EngineStatsTest, ToStringListsEveryAlgorithm) {
  EngineStats stats;
  stats.RecordQuery("hybrid", 1.0, MakeStats(1, 1, 0));
  stats.RecordQuery("merge-scan", 2.0, MakeStats(0, 0, 50));
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("hybrid"), std::string::npos);
  EXPECT_NE(rendered.find("merge-scan"), std::string::npos);
  EXPECT_NE(rendered.find("50"), std::string::npos);
}

TEST(EngineStatsTest, ResetClears) {
  EngineStats stats;
  stats.RecordQuery("hybrid", 1.0, MakeStats(1, 1, 1));
  stats.Reset();
  EXPECT_EQ(stats.total_queries(), 0u);
}

TEST(EngineStatsTest, TailScanAndCompactionAccessors) {
  EngineStats stats;
  EXPECT_EQ(stats.last_tail_items(), 0u);
  EXPECT_EQ(stats.last_tail_scan_ms(), 0.0);
  EXPECT_EQ(stats.compactions(), 0u);

  stats.RecordTailScan(120, 3.5);
  EXPECT_EQ(stats.last_tail_items(), 120u);
  EXPECT_DOUBLE_EQ(stats.last_tail_scan_ms(), 3.5);

  // Compaction resets the trigger inputs (the tail they measured is
  // gone) and counts itself, per mode.
  CompactionOutcome outcome;
  outcome.merged = false;
  outcome.items_merged = 120;
  outcome.lists_touched = 30;
  outcome.elapsed_ms = 42.0;
  stats.NoteCompaction(outcome);
  EXPECT_EQ(stats.compactions(), 1u);
  EXPECT_EQ(stats.merge_compactions(), 0u);
  EXPECT_EQ(stats.rebuild_compactions(), 1u);
  EXPECT_EQ(stats.last_compaction_mode(), "rebuild");
  EXPECT_DOUBLE_EQ(stats.last_compaction_ms(), 42.0);
  EXPECT_EQ(stats.last_tail_items(), 0u);
  EXPECT_EQ(stats.last_tail_scan_ms(), 0.0);

  // A merge compaction accumulates into the cumulative work counters.
  outcome.merged = true;
  outcome.items_merged = 7;
  outcome.lists_touched = 3;
  outcome.elapsed_ms = 1.5;
  stats.NoteCompaction(outcome);
  EXPECT_EQ(stats.compactions(), 2u);
  EXPECT_EQ(stats.merge_compactions(), 1u);
  EXPECT_EQ(stats.rebuild_compactions(), 1u);
  EXPECT_EQ(stats.last_compaction_mode(), "merge");
  EXPECT_EQ(stats.compaction_items_merged(), 127u);
  EXPECT_EQ(stats.compaction_lists_touched(), 33u);
  EXPECT_EQ(stats.last_items_merged(), 7u);
  EXPECT_EQ(stats.last_lists_touched(), 3u);

  stats.RecordTailScan(7, 0.2);
  stats.Reset();
  EXPECT_EQ(stats.last_tail_items(), 0u);
  EXPECT_EQ(stats.compactions(), 0u);
  EXPECT_EQ(stats.merge_compactions(), 0u);
  EXPECT_EQ(stats.compaction_items_merged(), 0u);
  EXPECT_EQ(stats.compaction_lists_touched(), 0u);
  EXPECT_EQ(stats.last_compaction_mode(), "none");

  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("compactions"), std::string::npos);
  EXPECT_NE(rendered.find("tail scan"), std::string::npos);
}

// The engine-level contract the compaction policy relies on: queries over
// a tail record its size and cost; Compact() resets both and bumps the
// compaction counter.
TEST(EngineStatsTest, EngineRecordsTailScansAndResetsOnCompact) {
  DatasetConfig config = SmallDataset();
  config.num_users = 120;
  config.num_tags = 60;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  SocialQuery query;
  query.user = 3;
  query.tags = {1};
  query.k = 5;
  query.alpha = 0.5;

  // Quiesced engine, no tail: the signal reads zero.
  ASSERT_TRUE(engine.value()->Query(query).ok());
  EXPECT_EQ(engine.value()->stats().last_tail_items(), 0u);

  for (int i = 0; i < 200; ++i) {
    Item item;
    item.owner = static_cast<UserId>(i % 120);
    item.tags = {static_cast<TagId>(i % 60)};
    item.quality = 0.5f;
    ASSERT_TRUE(engine.value()->AddItem(item).ok());
  }
  const auto result = engine.value()->Query(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(engine.value()->stats().last_tail_items(), 200u);
  EXPECT_EQ(result.value().stats.tail_items_scanned, 200u);

  ASSERT_TRUE(engine.value()->Compact().ok());
  EXPECT_EQ(engine.value()->stats().compactions(), 1u);
  EXPECT_EQ(engine.value()->stats().last_tail_items(), 0u);
  EXPECT_EQ(engine.value()->stats().last_tail_scan_ms(), 0.0);

  // Post-compaction queries see no tail and keep the signal at zero.
  const auto after = engine.value()->Query(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().stats.tail_items_scanned, 0u);
  EXPECT_EQ(engine.value()->stats().last_tail_items(), 0u);
}

TEST(EngineStatsTest, ConcurrentRecordingIsLossless) {
  EngineStats stats;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < 500; ++i) {
        stats.RecordQuery("hybrid", 0.5, MakeStats(1, 1, 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(stats.total_queries(), 4000u);
  EXPECT_DOUBLE_EQ(stats.MeanLatencyMsFor("hybrid"), 0.5);
}

}  // namespace
}  // namespace amici
