#include "core/social_query.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

SocialQuery ValidQuery() {
  SocialQuery query;
  query.user = 3;
  query.tags = {1, 5, 9};
  query.k = 10;
  query.alpha = 0.5;
  return query;
}

TEST(ValidateQueryTest, AcceptsWellFormedQuery) {
  EXPECT_TRUE(ValidateQuery(ValidQuery(), 100).ok());
}

TEST(ValidateQueryTest, RejectsUserOutOfRange) {
  SocialQuery query = ValidQuery();
  query.user = 100;
  EXPECT_EQ(ValidateQuery(query, 100).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateQueryTest, RejectsZeroK) {
  SocialQuery query = ValidQuery();
  query.k = 0;
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
}

TEST(ValidateQueryTest, RejectsAlphaOutOfRange) {
  SocialQuery query = ValidQuery();
  query.alpha = -0.01;
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  query.alpha = 1.01;
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  query.alpha = 0.0;
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
  query.alpha = 1.0;
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
}

TEST(ValidateQueryTest, RejectsEmptyTagsUnlessPureSocial) {
  SocialQuery query = ValidQuery();
  query.tags.clear();
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  // The tag-less pure-social feed is the one legal empty-tags shape.
  query.alpha = 1.0;
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
  query.alpha = 0.999;
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  query.alpha = 0.0;
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
}

TEST(ValidateQueryTest, TaglessFeedComposesWithGeoAndModes) {
  SocialQuery query;
  query.user = 3;
  query.k = 5;
  query.alpha = 1.0;
  query.mode = MatchMode::kAll;
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
  query.has_geo_filter = true;
  query.radius_km = 10.0f;
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
}

TEST(ValidateQueryTest, RejectsUnsortedOrDuplicateTags) {
  SocialQuery query = ValidQuery();
  query.tags = {5, 1};
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  query.tags = {1, 1, 5};
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
}

TEST(ValidateQueryTest, GeoFilterNeedsPositiveRadius) {
  SocialQuery query = ValidQuery();
  query.has_geo_filter = true;
  query.radius_km = 0.0f;
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  query.radius_km = 5.0f;
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
}

TEST(NormalizeQueryTest, SortsAndDeduplicates) {
  SocialQuery query;
  query.tags = {9, 1, 5, 1, 9};
  NormalizeQuery(&query);
  EXPECT_EQ(query.tags, (std::vector<TagId>{1, 5, 9}));
}

TEST(NormalizeQueryTest, MakesRawQueryValid) {
  SocialQuery query = ValidQuery();
  query.tags = {7, 3, 7};
  EXPECT_FALSE(ValidateQuery(query, 100).ok());
  NormalizeQuery(&query);
  EXPECT_TRUE(ValidateQuery(query, 100).ok());
}

}  // namespace
}  // namespace amici
