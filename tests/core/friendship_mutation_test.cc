#include <memory>

#include "core/engine.h"
#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace amici {
namespace {

/// World: alice(0), bob(1), carol(2). Initially only alice-bob are
/// friends. Bob and carol each own one item tagged 0.
class FriendshipMutationTest : public ::testing::Test {
 protected:
  FriendshipMutationTest() {
    GraphBuilder builder(3);
    EXPECT_TRUE(builder.AddEdge(0, 1).ok());

    ItemStore store;
    auto add = [&store](UserId owner) {
      Item item;
      item.owner = owner;
      item.tags = {0};
      item.quality = 0.5f;
      EXPECT_TRUE(store.Add(item).ok());
    };
    add(1);  // item 0: bob's
    add(2);  // item 1: carol's

    // Warm-over off: the cache-keying assertions below count provider
    // computations, which background warm-over would race.
    SocialSearchEngine::Options options;
    options.proximity_warm_top_n = 0;
    auto engine = SocialSearchEngine::Build(builder.Build(),
                                            std::move(store),
                                            std::move(options));
    EXPECT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
  }

  SocialQuery SocialFeed() {
    SocialQuery query;
    query.user = 0;
    query.tags = {0};
    query.k = 5;
    query.alpha = 1.0;  // purely social: only reachable owners count
    return query;
  }

  std::unique_ptr<SocialSearchEngine> engine_;
};

TEST_F(FriendshipMutationTest, NewFriendshipSurfacesNewItems) {
  const auto before = engine_->Query(SocialFeed());
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().items.size(), 1u);  // only bob's item
  EXPECT_EQ(before.value().items[0].item, 0u);

  ASSERT_TRUE(engine_->AddFriendship(0, 2).ok());
  const auto after = engine_->Query(SocialFeed());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().items.size(), 2u);  // carol's item appears
}

TEST_F(FriendshipMutationTest, RemovalHidesItems) {
  ASSERT_TRUE(engine_->RemoveFriendship(0, 1).ok());
  const auto result = engine_->Query(SocialFeed());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().items.empty());  // alice is isolated now
}

TEST_F(FriendshipMutationTest, DuplicateAddIsAlreadyExists) {
  EXPECT_EQ(engine_->AddFriendship(0, 1).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine_->AddFriendship(1, 0).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FriendshipMutationTest, RemovingMissingEdgeIsNotFound) {
  EXPECT_EQ(engine_->RemoveFriendship(0, 2).code(), StatusCode::kNotFound);
}

TEST_F(FriendshipMutationTest, RejectsBadEndpoints) {
  EXPECT_EQ(engine_->AddFriendship(0, 9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_->AddFriendship(1, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_->RemoveFriendship(9, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FriendshipMutationTest, MutationInvalidatesProximityCache) {
  // Prime the cache.
  ASSERT_TRUE(engine_->Query(SocialFeed()).ok());
  EXPECT_GT(engine_->proximity().stats().cache_entries, 0u);
  ASSERT_TRUE(engine_->AddFriendship(1, 2).ok());
  // Invalidation is by graph-generation keying, not by flushing: the
  // next query must recompute against the new graph ...
  const uint64_t computed_before = engine_->proximity().stats().computations;
  ASSERT_TRUE(engine_->Query(SocialFeed()).ok());
  EXPECT_GT(engine_->proximity().stats().computations, computed_before);
  // ... and a repeat on the same generation hits again.
  const uint64_t hits_before = engine_->proximity().stats().cache_hits;
  ASSERT_TRUE(engine_->Query(SocialFeed()).ok());
  EXPECT_GT(engine_->proximity().stats().cache_hits, hits_before);
}

TEST_F(FriendshipMutationTest, GraphStateReflectsMutations) {
  ASSERT_TRUE(engine_->AddFriendship(0, 2).ok());
  EXPECT_TRUE(engine_->graph().HasEdge(0, 2));
  EXPECT_TRUE(engine_->graph().HasEdge(2, 0));
  EXPECT_EQ(engine_->graph().num_edges(), 2u);
  ASSERT_TRUE(engine_->RemoveFriendship(0, 1).ok());
  EXPECT_FALSE(engine_->graph().HasEdge(0, 1));
  EXPECT_EQ(engine_->graph().num_edges(), 1u);
}

}  // namespace
}  // namespace amici
