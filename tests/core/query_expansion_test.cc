#include "core/query_expansion.h"

#include <vector>

#include "gtest/gtest.h"
#include "index/social_index.h"

namespace amici {
namespace {

/// Fixture world: user 0 queries; user 1 is a close friend, user 2 a weak
/// acquaintance, user 3 a stranger (no proximity).
///   item of u0: {beach(0), coffee(5)}
///   items of u1: {beach(0), surf(1)}, {beach(0), surf(1), sunset(2)}
///   item of u2: {beach(0), volleyball(3)}
///   item of u3: {beach(0), shark(4)}   <- no proximity, ignored
class QueryExpansionTest : public ::testing::Test {
 protected:
  QueryExpansionTest() {
    auto add = [this](UserId owner, std::vector<TagId> tags) {
      Item item;
      item.owner = owner;
      item.tags = std::move(tags);
      item.quality = 0.5f;
      EXPECT_TRUE(store_.Add(item).ok());
    };
    add(0, {0, 5});
    add(1, {0, 1});
    add(1, {0, 1, 2});
    add(2, {0, 3});
    add(3, {0, 4});
    social_ = SocialIndex::Build(store_, 4);
    proximity_ = ProximityVector::FromUnnormalized(
        {{1, 1.0f}, {2, 0.2f}});
  }

  ItemStore store_;
  SocialIndex social_;
  ProximityVector proximity_;
};

TEST_F(QueryExpansionTest, SuggestsProximityWeightedCooccurrences) {
  const std::vector<TagId> seeds{0};  // "beach"
  const auto suggestions = SuggestQueryTags(store_, social_, proximity_, 0,
                                            seeds, QueryExpansionOptions());
  ASSERT_TRUE(suggestions.ok());
  ASSERT_GE(suggestions.value().size(), 3u);
  // surf(1): 2 items × weight 1.0 = 2.0 — the top suggestion.
  EXPECT_EQ(suggestions.value()[0].tag, 1u);
  EXPECT_FLOAT_EQ(suggestions.value()[0].weight, 2.0f);
  // coffee(5): own item, weight 1.0; sunset(2): friend, 1.0 — tie broken
  // by tag id (2 before 5).
  EXPECT_EQ(suggestions.value()[1].tag, 2u);
  EXPECT_EQ(suggestions.value()[2].tag, 5u);
}

TEST_F(QueryExpansionTest, StrangersContributeNothing) {
  const std::vector<TagId> seeds{0};
  const auto suggestions = SuggestQueryTags(store_, social_, proximity_, 0,
                                            seeds, QueryExpansionOptions());
  ASSERT_TRUE(suggestions.ok());
  for (const TagSuggestion& s : suggestions.value()) {
    EXPECT_NE(s.tag, 4u) << "shark came from a zero-proximity stranger";
  }
}

TEST_F(QueryExpansionTest, SeedTagsNeverSuggested) {
  const std::vector<TagId> seeds{0, 1};
  const auto suggestions = SuggestQueryTags(store_, social_, proximity_, 0,
                                            seeds, QueryExpansionOptions());
  ASSERT_TRUE(suggestions.ok());
  for (const TagSuggestion& s : suggestions.value()) {
    EXPECT_NE(s.tag, 0u);
    EXPECT_NE(s.tag, 1u);
  }
}

TEST_F(QueryExpansionTest, MaxSuggestionsTruncates) {
  const std::vector<TagId> seeds{0};
  QueryExpansionOptions options;
  options.max_suggestions = 1;
  const auto suggestions =
      SuggestQueryTags(store_, social_, proximity_, 0, seeds, options);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_EQ(suggestions.value().size(), 1u);
  EXPECT_EQ(suggestions.value()[0].tag, 1u);
}

TEST_F(QueryExpansionTest, MinCooccurrenceFilters) {
  const std::vector<TagId> seeds{0};
  QueryExpansionOptions options;
  options.min_cooccurrence = 2;  // only surf has 2 witnesses
  const auto suggestions =
      SuggestQueryTags(store_, social_, proximity_, 0, seeds, options);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_EQ(suggestions.value().size(), 1u);
  EXPECT_EQ(suggestions.value()[0].tag, 1u);
}

TEST_F(QueryExpansionTest, MaxUsersLimitsEvidence) {
  const std::vector<TagId> seeds{0};
  QueryExpansionOptions options;
  options.max_users = 1;  // self only
  const auto suggestions =
      SuggestQueryTags(store_, social_, proximity_, 0, seeds, options);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_EQ(suggestions.value().size(), 1u);
  EXPECT_EQ(suggestions.value()[0].tag, 5u);  // coffee, from the own item
}

TEST_F(QueryExpansionTest, NoSeedMatchesYieldsEmpty) {
  const std::vector<TagId> seeds{99};
  const auto suggestions = SuggestQueryTags(store_, social_, proximity_, 0,
                                            seeds, QueryExpansionOptions());
  ASSERT_TRUE(suggestions.ok());
  EXPECT_TRUE(suggestions.value().empty());
}

TEST_F(QueryExpansionTest, RejectsBadArguments) {
  EXPECT_FALSE(SuggestQueryTags(store_, social_, proximity_, 0, {},
                                QueryExpansionOptions())
                   .ok());
  const std::vector<TagId> unsorted{3, 1};
  EXPECT_FALSE(SuggestQueryTags(store_, social_, proximity_, 0, unsorted,
                                QueryExpansionOptions())
                   .ok());
  const std::vector<TagId> seeds{0};
  QueryExpansionOptions zero;
  zero.max_suggestions = 0;
  EXPECT_FALSE(
      SuggestQueryTags(store_, social_, proximity_, 0, seeds, zero).ok());
  EXPECT_FALSE(SuggestQueryTags(store_, social_, proximity_, 99, seeds,
                                QueryExpansionOptions())
                   .ok());
}

}  // namespace
}  // namespace amici
