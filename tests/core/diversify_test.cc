#include <memory>
#include <unordered_map>

#include "core/engine.h"
#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace amici {
namespace {

/// World: bob(1) is prolific (5 good items); carol(2) has 2 weaker ones;
/// dave(3) one weak one. Alice(0) queries a pure social feed.
class DiversifyTest : public ::testing::Test {
 protected:
  DiversifyTest() {
    GraphBuilder builder(4);
    EXPECT_TRUE(builder.AddEdge(0, 1).ok());
    EXPECT_TRUE(builder.AddEdge(0, 2).ok());
    EXPECT_TRUE(builder.AddEdge(0, 3).ok());

    ItemStore store;
    auto add = [&store](UserId owner, float quality) {
      Item item;
      item.owner = owner;
      item.tags = {0};
      item.quality = quality;
      EXPECT_TRUE(store.Add(item).ok());
    };
    for (int i = 0; i < 5; ++i) add(1, 0.95f);  // items 0-4: bob
    add(2, 0.6f);                               // item 5: carol
    add(2, 0.5f);                               // item 6: carol
    add(3, 0.3f);                               // item 7: dave

    auto engine = SocialSearchEngine::Build(builder.Build(),
                                            std::move(store), {});
    EXPECT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
  }

  SocialQuery Feed(size_t k) {
    SocialQuery query;
    query.user = 0;
    query.tags = {0};
    query.k = k;
    query.alpha = 0.2;  // quality-dominated so bob's items rank first
    return query;
  }

  std::unordered_map<UserId, size_t> OwnerCounts(
      const std::vector<ScoredItem>& items) {
    std::unordered_map<UserId, size_t> counts;
    for (const auto& entry : items) {
      ++counts[engine_->store().owner(entry.item)];
    }
    return counts;
  }

  std::unique_ptr<SocialSearchEngine> engine_;
};

TEST_F(DiversifyTest, UndiversifiedFeedIsMonopolized) {
  const auto result = engine_->Query(Feed(4), AlgorithmId::kHybrid);
  ASSERT_TRUE(result.ok());
  const auto counts = OwnerCounts(result.value().items);
  EXPECT_EQ(counts.at(1), 4u);  // all bob
}

TEST_F(DiversifyTest, CapEnforcedPerOwner) {
  const auto result =
      engine_->QueryDiverse(Feed(4), /*max_per_owner=*/2,
                            AlgorithmId::kHybrid);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().items.size(), 4u);
  const auto counts = OwnerCounts(result.value().items);
  for (const auto& [owner, count] : counts) {
    EXPECT_LE(count, 2u) << "owner " << owner;
  }
  // Greedy in score order: bob's two best, then carol's two.
  EXPECT_EQ(counts.at(1), 2u);
  EXPECT_EQ(counts.at(2), 2u);
}

TEST_F(DiversifyTest, CapOneGivesOnePerOwner) {
  const auto result =
      engine_->QueryDiverse(Feed(3), 1, AlgorithmId::kHybrid);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().items.size(), 3u);
  const auto counts = OwnerCounts(result.value().items);
  EXPECT_EQ(counts.size(), 3u);  // bob, carol, dave each once
}

TEST_F(DiversifyTest, CorpusExhaustionReturnsFewerThanK) {
  // cap 1 with only 3 owners: k=5 can fill at most 3 slots.
  const auto result =
      engine_->QueryDiverse(Feed(5), 1, AlgorithmId::kHybrid);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().items.size(), 3u);
}

TEST_F(DiversifyTest, ScoresStayDescendingAndExact) {
  const auto diverse =
      engine_->QueryDiverse(Feed(4), 2, AlgorithmId::kHybrid);
  const auto oracle =
      engine_->QueryDiverse(Feed(4), 2, AlgorithmId::kExhaustive);
  ASSERT_TRUE(diverse.ok());
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(diverse.value().items.size(), oracle.value().items.size());
  for (size_t i = 0; i < diverse.value().items.size(); ++i) {
    EXPECT_NEAR(diverse.value().items[i].score,
                oracle.value().items[i].score, 1e-6);
    if (i > 0) {
      EXPECT_GE(diverse.value().items[i - 1].score,
                diverse.value().items[i].score);
    }
  }
}

TEST_F(DiversifyTest, ZeroCapRejected) {
  EXPECT_FALSE(engine_->QueryDiverse(Feed(3), 0, AlgorithmId::kHybrid).ok());
}

TEST_F(DiversifyTest, LargeCapEqualsPlainQuery) {
  const auto plain = engine_->Query(Feed(4), AlgorithmId::kHybrid);
  const auto diverse =
      engine_->QueryDiverse(Feed(4), 100, AlgorithmId::kHybrid);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(diverse.ok());
  ASSERT_EQ(plain.value().items.size(), diverse.value().items.size());
  for (size_t i = 0; i < plain.value().items.size(); ++i) {
    EXPECT_EQ(plain.value().items[i].item, diverse.value().items[i].item);
  }
}

}  // namespace
}  // namespace amici
