#include "core/ta_sources.h"

#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(ImpactListSourceTest, AppliesWeightAndPreservesOrder) {
  const std::vector<ScoredItem> entries{{3, 0.9f}, {1, 0.6f}, {7, 0.3f}};
  ImpactListSource source(entries, 0.5, /*horizon=*/100);
  std::vector<float> partials;
  std::vector<ItemId> items;
  for (; source.Valid(); source.Next()) {
    partials.push_back(source.Current().score);
    items.push_back(source.Current().item);
  }
  EXPECT_EQ(items, (std::vector<ItemId>{3, 1, 7}));
  EXPECT_FLOAT_EQ(partials[0], 0.45f);
  EXPECT_FLOAT_EQ(partials[1], 0.30f);
  EXPECT_FLOAT_EQ(partials[2], 0.15f);
}

TEST(ImpactListSourceTest, SkipsItemsBeyondHorizon) {
  const std::vector<ScoredItem> entries{{3, 0.9f}, {50, 0.6f}, {7, 0.3f}};
  ImpactListSource source(entries, 1.0, /*horizon=*/10);
  std::vector<ItemId> items;
  for (; source.Valid(); source.Next()) {
    items.push_back(source.Current().item);
  }
  EXPECT_EQ(items, (std::vector<ItemId>{3, 7}));
}

TEST(ImpactListSourceTest, EmptySpanIsInvalid) {
  ImpactListSource source({}, 1.0, 100);
  EXPECT_FALSE(source.Valid());
}

class SocialStreamSourceTest : public ::testing::Test {
 protected:
  SocialStreamSourceTest() {
    auto add = [this](UserId owner, float quality) {
      Item item;
      item.owner = owner;
      item.tags = {0};
      item.quality = quality;
      EXPECT_TRUE(store_.Add(item).ok());
    };
    // user 0 (self): items 0, 1; user 1: item 2; user 2: none;
    // user 3: items 3, 4.
    add(0, 0.9f);
    add(0, 0.1f);
    add(1, 0.5f);
    add(3, 0.7f);
    add(3, 0.2f);
    social_ = SocialIndex::Build(store_, 4);
  }

  ItemStore store_;
  SocialIndex social_;
};

TEST_F(SocialStreamSourceTest, SelfItemsFirstThenFriendsByProximity) {
  const ProximityVector proximity = ProximityVector::FromUnnormalized(
      {{1, 1.0f}, {3, 0.5f}});
  SocialStreamSource source(&proximity, &social_, /*self=*/0,
                            /*weight=*/1.0, /*horizon=*/100);
  std::vector<ItemId> items;
  std::vector<float> partials;
  for (; source.Valid(); source.Next()) {
    items.push_back(source.Current().item);
    partials.push_back(source.Current().score);
  }
  // Self items (quality-desc: 0 then 1) at partial 1.0; then user 1's
  // item at 1.0; then user 3's (quality-desc: 3 then 4) at 0.5.
  EXPECT_EQ(items, (std::vector<ItemId>{0, 1, 2, 3, 4}));
  EXPECT_FLOAT_EQ(partials[0], 1.0f);
  EXPECT_FLOAT_EQ(partials[1], 1.0f);
  EXPECT_FLOAT_EQ(partials[2], 1.0f);
  EXPECT_FLOAT_EQ(partials[3], 0.5f);
  EXPECT_FLOAT_EQ(partials[4], 0.5f);
}

TEST_F(SocialStreamSourceTest, PartialsAreNonIncreasing) {
  const ProximityVector proximity = ProximityVector::FromUnnormalized(
      {{1, 0.8f}, {2, 0.6f}, {3, 0.4f}});
  SocialStreamSource source(&proximity, &social_, 0, 0.7, 100);
  float previous = 1e9f;
  for (; source.Valid(); source.Next()) {
    EXPECT_LE(source.Current().score, previous + 1e-7f);
    previous = source.Current().score;
  }
}

TEST_F(SocialStreamSourceTest, SkipsSelfReappearingInProximityVector) {
  // Some models include the source user; the stream must not emit the
  // self items twice.
  const ProximityVector proximity = ProximityVector::FromUnnormalized(
      {{0, 1.0f}, {1, 0.5f}});
  SocialStreamSource source(&proximity, &social_, 0, 1.0, 100);
  std::vector<ItemId> items;
  for (; source.Valid(); source.Next()) {
    items.push_back(source.Current().item);
  }
  EXPECT_EQ(items, (std::vector<ItemId>{0, 1, 2}));
}

TEST_F(SocialStreamSourceTest, SkipsUsersWithNoItems) {
  const ProximityVector proximity = ProximityVector::FromUnnormalized(
      {{2, 1.0f}, {3, 0.5f}});  // user 2 owns nothing
  SocialStreamSource source(&proximity, &social_, 0, 1.0, 100);
  std::vector<ItemId> items;
  for (; source.Valid(); source.Next()) {
    items.push_back(source.Current().item);
  }
  EXPECT_EQ(items, (std::vector<ItemId>{0, 1, 3, 4}));
}

TEST_F(SocialStreamSourceTest, HorizonHidesTailItems) {
  const ProximityVector proximity = ProximityVector::FromUnnormalized(
      {{1, 1.0f}, {3, 0.5f}});
  SocialStreamSource source(&proximity, &social_, 0, 1.0, /*horizon=*/3);
  std::vector<ItemId> items;
  for (; source.Valid(); source.Next()) {
    items.push_back(source.Current().item);
  }
  EXPECT_EQ(items, (std::vector<ItemId>{0, 1, 2}));
}

TEST_F(SocialStreamSourceTest, EmptyProximityEmitsOnlySelf) {
  const ProximityVector proximity;
  SocialStreamSource source(&proximity, &social_, 3, 1.0, 100);
  std::vector<ItemId> items;
  for (; source.Valid(); source.Next()) {
    items.push_back(source.Current().item);
  }
  EXPECT_EQ(items, (std::vector<ItemId>{3, 4}));
}

}  // namespace
}  // namespace amici
