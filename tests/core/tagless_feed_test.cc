// The tag-less pure-social feed (alpha == 1.0, no tags): every
// early-terminating strategy must agree with the exhaustive oracle, in
// both match modes, with and without a geo filter, through the diverse
// path, and across the un-indexed tail — the same exactness bar the
// tagged queries are held to in tests/integration/exactness_test.cc.

#include <algorithm>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

class TaglessFeedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetConfig config = SmallDataset();
    config.num_users = 300;
    config.items_per_user = 4.0;
    config.num_tags = 150;
    config.geo_fraction = 0.4;
    config.seed = 606;
    Dataset dataset = GenerateDataset(config).value();
    auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                            std::move(dataset.store), {});
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
  }

  static SocialQuery Feed(UserId user, MatchMode mode = MatchMode::kAny) {
    SocialQuery query;
    query.user = user;
    query.k = 10;
    query.alpha = 1.0;
    query.mode = mode;
    return query;
  }

  void ExpectAllAlgorithmsAgree(const SocialQuery& query,
                                bool include_geo_grid = false) {
    const auto expected = engine_->Query(query, AlgorithmId::kExhaustive);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    std::vector<AlgorithmId> candidates{
        AlgorithmId::kMergeScan, AlgorithmId::kContentFirst,
        AlgorithmId::kSocialFirst, AlgorithmId::kHybrid, AlgorithmId::kNra};
    if (include_geo_grid) candidates.push_back(AlgorithmId::kGeoGrid);
    for (const AlgorithmId id : candidates) {
      const auto actual = engine_->Query(query, id);
      ASSERT_TRUE(actual.ok())
          << AlgorithmName(id) << ": " << actual.status().ToString();
      ASSERT_EQ(actual.value().items.size(), expected.value().items.size())
          << AlgorithmName(id);
      // Pure-social feeds are tie-heavy (every item of one owner scores
      // the same), and ties may order arbitrarily per the algorithm
      // contract — compare the exact score profile, like
      // tests/integration/exactness_test.cc does.
      for (size_t i = 0; i < actual.value().items.size(); ++i) {
        EXPECT_NEAR(actual.value().items[i].score,
                    expected.value().items[i].score, 1e-6)
            << AlgorithmName(id) << " rank " << i;
      }
    }
  }

  std::unique_ptr<SocialSearchEngine> engine_;
};

TEST_F(TaglessFeedTest, AllAlgorithmsAgreeOnPureSocialFeeds) {
  for (const UserId user : {UserId{0}, UserId{7}, UserId{123}, UserId{250}}) {
    ExpectAllAlgorithmsAgree(Feed(user));
    ExpectAllAlgorithmsAgree(Feed(user, MatchMode::kAll));
  }
}

TEST_F(TaglessFeedTest, FeedScoresArePureProximity) {
  const auto result = engine_->Query(Feed(7));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().items.empty());
  for (const ScoredItem& entry : result.value().items) {
    EXPECT_GT(entry.score, 0.0f);
    EXPECT_LE(entry.score, 1.0f);  // proximity is normalized
  }
  // The user's own items score exactly 1.0 and therefore lead the feed.
  const UserId owner = engine_->store().owner(result.value().items[0].item);
  if (owner == 7) {
    EXPECT_EQ(result.value().items[0].score, 1.0f);
  }
}

TEST_F(TaglessFeedTest, GeoFilteredFeedAgrees) {
  SocialQuery query = Feed(42);
  // Anchor the circle on some geo item so it is not empty.
  for (ItemId i = 0; i < static_cast<ItemId>(engine_->store().num_items());
       ++i) {
    if (engine_->store().has_geo(i)) {
      query.has_geo_filter = true;
      query.latitude = engine_->store().latitude(i);
      query.longitude = engine_->store().longitude(i);
      query.radius_km = 50.0f;
      break;
    }
  }
  ASSERT_TRUE(query.has_geo_filter);
  ExpectAllAlgorithmsAgree(query, /*include_geo_grid=*/true);
}

TEST_F(TaglessFeedTest, DiverseFeedCapsOwners) {
  const auto result =
      engine_->QueryDiverse(Feed(7), /*max_per_owner=*/1, AlgorithmId::kHybrid);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<UserId> owners;
  for (const ScoredItem& entry : result.value().items) {
    owners.push_back(engine_->store().owner(entry.item));
  }
  std::sort(owners.begin(), owners.end());
  EXPECT_EQ(std::adjacent_find(owners.begin(), owners.end()), owners.end());
}

TEST_F(TaglessFeedTest, FeedSeesUnindexedTail) {
  const auto before = engine_->Query(Feed(7));
  ASSERT_TRUE(before.ok());
  // A direct friend posts: with proximity >> 0 the fresh item must enter
  // the feed without any compaction.
  const auto friends = engine_->graph().Friends(7);
  ASSERT_FALSE(friends.empty());
  Item post;
  post.owner = friends[0];
  post.tags = {0};
  post.quality = 0.5f;
  const auto id = engine_->AddItem(post);
  ASSERT_TRUE(id.ok());
  ExpectAllAlgorithmsAgree(Feed(7));
  // With k covering the whole corpus the fresh item MUST appear (its
  // score is the friend's positive proximity).
  SocialQuery full = Feed(7);
  full.k = engine_->store().num_items();
  const auto after = engine_->Query(full);
  ASSERT_TRUE(after.ok());
  bool found = false;
  for (const ScoredItem& entry : after.value().items) {
    found |= entry.item == id.value();
  }
  EXPECT_TRUE(found) << "fresh friend post missing from the tail-merged feed";
}

}  // namespace
}  // namespace amici
