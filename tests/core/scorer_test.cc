#include "core/scorer.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

class ScorerTest : public ::testing::Test {
 protected:
  ScorerTest() {
    auto add = [this](UserId owner, std::vector<TagId> tags, float quality) {
      Item item;
      item.owner = owner;
      item.tags = std::move(tags);
      item.quality = quality;
      EXPECT_TRUE(store_.Add(item).ok());
    };
    add(0, {1, 2}, 0.8f);     // item 0: owned by the querying user
    add(5, {1, 2, 3}, 0.6f);  // item 1: close friend's item, all tags
    add(7, {9}, 1.0f);        // item 2: stranger, no matching tag
    add(5, {2}, 0.4f);        // item 3: friend, one of two tags

    proximity_ = ProximityVector::FromUnnormalized({{5, 1.0f}, {6, 0.25f}});

    query_.user = 0;
    query_.tags = {1, 2};
    query_.alpha = 0.5;
    query_.k = 10;
  }

  ItemStore store_;
  ProximityVector proximity_;
  SocialQuery query_;
};

TEST_F(ScorerTest, OwnItemsHaveSocialScoreOne) {
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_DOUBLE_EQ(scorer.SocialScore(0), 1.0);
}

TEST_F(ScorerTest, FriendProximityIsLookedUp) {
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_DOUBLE_EQ(scorer.SocialScore(1), 1.0);   // owner 5 at prox 1.0
  EXPECT_DOUBLE_EQ(scorer.SocialScore(2), 0.0);   // owner 7 unknown
}

TEST_F(ScorerTest, MatchedTagsCountsIntersection) {
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_EQ(scorer.MatchedTags(0), 2u);
  EXPECT_EQ(scorer.MatchedTags(1), 2u);
  EXPECT_EQ(scorer.MatchedTags(2), 0u);
  EXPECT_EQ(scorer.MatchedTags(3), 1u);
}

TEST_F(ScorerTest, ContentScoreAnyModeScalesWithCoverage) {
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_NEAR(scorer.ContentScore(0), 0.8, 1e-6);   // full coverage
  EXPECT_NEAR(scorer.ContentScore(3), 0.2, 1e-6);   // half coverage
  EXPECT_DOUBLE_EQ(scorer.ContentScore(2), 0.0);
}

TEST_F(ScorerTest, ContentScoreAllModeIsQualityOrZero) {
  query_.mode = MatchMode::kAll;
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_NEAR(scorer.ContentScore(0), 0.8, 1e-6);
  EXPECT_NEAR(scorer.ContentScore(1), 0.6, 1e-6);
  EXPECT_DOUBLE_EQ(scorer.ContentScore(3), 0.0);  // misses tag 1
}

TEST_F(ScorerTest, EligibilityFollowsMode) {
  {
    const Scorer scorer(&store_, &proximity_, &query_);
    EXPECT_TRUE(scorer.Eligible(2));  // kAny: everything eligible
  }
  query_.mode = MatchMode::kAll;
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_TRUE(scorer.Eligible(0));
  EXPECT_TRUE(scorer.Eligible(1));
  EXPECT_FALSE(scorer.Eligible(2));
  EXPECT_FALSE(scorer.Eligible(3));
}

TEST_F(ScorerTest, BlendInterpolatesComponents) {
  query_.alpha = 0.25;
  const Scorer scorer(&store_, &proximity_, &query_);
  const double expected =
      0.25 * scorer.SocialScore(3) + 0.75 * scorer.ContentScore(3);
  EXPECT_DOUBLE_EQ(scorer.Score(3), expected);
}

TEST_F(ScorerTest, AlphaExtremesIsolateComponents) {
  query_.alpha = 0.0;
  {
    const Scorer scorer(&store_, &proximity_, &query_);
    EXPECT_DOUBLE_EQ(scorer.Score(1), scorer.ContentScore(1));
  }
  query_.alpha = 1.0;
  const Scorer scorer(&store_, &proximity_, &query_);
  EXPECT_DOUBLE_EQ(scorer.Score(1), scorer.SocialScore(1));
}

}  // namespace
}  // namespace amici
