// The acceptance property of the ProximityProvider redesign: behind an
// N-shard ShardedSearchService there is exactly ONE SocialGraph instance
// and ONE proximity cache, and a cache-missed user costs exactly ONE
// proximity computation per (user, generation) — not N — even though all
// N shards need the vector concurrently during the fan-out.

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "proximity/hop_decay.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

class CountingModel : public ProximityModel {
 public:
  CountingModel() = default;
  std::string_view name() const override { return "counting"; }
  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override {
    computations_.fetch_add(1);
    return inner_.Compute(graph, source);
  }
  int computations() const { return computations_.load(); }

 private:
  HopDecayProximity inner_;
  mutable std::atomic<int> computations_{0};
};

struct Built {
  std::unique_ptr<ShardedSearchService> service;
  std::shared_ptr<CountingModel> model;
};

Built BuildSharded(size_t num_shards) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.num_tags = 120;
  config.seed = 5;
  Dataset dataset = GenerateDataset(config).value();

  Built built;
  built.model = std::make_shared<CountingModel>();
  ShardedSearchService::Options options;
  options.num_shards = num_shards;
  options.engine.proximity_model = built.model;
  // Warm-over off: these tests count computations exactly, and the
  // background warmer would add nondeterministic ones.
  options.engine.proximity_warm_top_n = 0;
  auto service = ShardedSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  built.service = std::move(service).value();
  return built;
}

SearchRequest RequestFor(UserId user) {
  SearchRequest request;
  request.query.user = user;
  request.query.tags = {1, 2};
  request.query.k = 10;
  request.query.alpha = 0.5;
  return request;
}

TEST(ProximitySharingTest, AllShardsPinTheSameGraphInstance) {
  Built built = BuildSharded(4);
  const auto provider_view = built.service->proximity_provider()->Acquire();
  for (size_t s = 0; s < built.service->num_shards(); ++s) {
    const auto snap = built.service->shard_engine(s)->snapshot();
    // Pointer identity, not equality: ONE graph instance, not N replicas.
    EXPECT_EQ(snap->graph.get(), provider_view.graph.get()) << "shard " << s;
    EXPECT_EQ(snap->graph_version, provider_view.generation);
  }
  // ... and the engines all share the service's provider (one cache).
  for (size_t s = 0; s < built.service->num_shards(); ++s) {
    EXPECT_EQ(built.service->shard_engine(s)->shared_proximity().get(),
              built.service->proximity_provider().get());
  }
}

TEST(ProximitySharingTest, ColdUserCostsOneComputationAcrossFourShards) {
  Built built = BuildSharded(4);

  const auto response = built.service->Search(RequestFor(17));
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // 4 shards each needed user 17's vector; exactly ONE computed, the
  // other 3 hit the shared cache or joined the in-flight computation.
  EXPECT_EQ(built.model->computations(), 1);
  EXPECT_EQ(response.value().stats.proximity_computations, 1u);
  EXPECT_EQ(response.value().stats.proximity_cache_hits, 3u);
  const ProximityProviderStats stats = built.service->proximity_stats();
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.cache_hits + stats.inflight_joins, 3u);

  // A repeat is all hits.
  const auto repeat = built.service->Search(RequestFor(17));
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(built.model->computations(), 1);
  EXPECT_EQ(repeat.value().stats.proximity_computations, 0u);
  EXPECT_EQ(repeat.value().stats.proximity_cache_hits, 4u);
}

TEST(ProximitySharingTest, OneComputationPerUniqueUserAndGeneration) {
  Built built = BuildSharded(4);
  const std::vector<UserId> users = {3, 17, 42, 99, 120, 3, 17, 42};

  std::set<std::pair<uint64_t, UserId>> unique_keys;
  for (const UserId user : users) {
    ASSERT_TRUE(built.service->Search(RequestFor(user)).ok());
    unique_keys.insert({0, user});
  }
  EXPECT_EQ(built.model->computations(),
            static_cast<int>(unique_keys.size()));

  // A generation bump starts a fresh key space; repeats within it still
  // cost one computation each.
  UserId other = 1;
  const auto view = built.service->proximity_provider()->Acquire();
  while (view.graph->HasEdge(0, other)) ++other;
  ASSERT_TRUE(built.service->AddFriendship(0, other).ok());
  for (const UserId user : users) {
    ASSERT_TRUE(built.service->Search(RequestFor(user)).ok());
    unique_keys.insert({1, user});
  }
  EXPECT_EQ(built.model->computations(),
            static_cast<int>(unique_keys.size()));
  EXPECT_EQ(built.service->proximity_stats().generations_published, 1u);
}

TEST(ProximitySharingTest, ConcurrentBatchStillComputesOncePerUser) {
  Built built = BuildSharded(4);
  // One batch, every request for the SAME user: 4 shards x 8 requests all
  // race for one vector; single-flight must collapse them to 1.
  std::vector<SearchRequest> requests(8, RequestFor(64));
  const auto responses = built.service->SearchBatch(requests);
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  EXPECT_EQ(built.model->computations(), 1);
}

}  // namespace
}  // namespace amici
