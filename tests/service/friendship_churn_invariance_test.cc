// Randomized friendship-churn invariance: a stream of interleaved
// Add/RemoveFriendship edits and queries applied identically to a serial
// single-engine reference and to a fleet of variant backends must keep
// every backend bit-identical at every step — including across the graph
// generation bumps the edits cause (each edit publishes a new generation
// through the ProximityProvider, and every shard must adopt it before the
// next query).
//
// The fleet covers both axes of the serving topology:
//  * 1/2/4-SHARD services over the single shared provider (the item
//    corpus is partitioned; the graph is one provider);
//  * 1/2/4-PARTITION proximity routers (the graph itself is partitioned
//    across delta-overlay partitions behind the routing boundary), with
//    an aggressive fold policy AND explicit mid-run FoldOverlay calls on
//    some backends only — folds are representation changes, so a backend
//    that folds constantly must stay bit-identical to one that never
//    does, at the same published generations.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "proximity_service/overlay_fold_policy.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4};
constexpr size_t kPartitionCounts[] = {1, 2, 4};

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 250;
  config.items_per_user = 3.0;
  config.num_tags = 120;
  config.seed = seed;
  return config;
}

/// One backend under test plus how the run should exercise its folds.
struct Backend {
  std::unique_ptr<SearchService> service;
  std::string label;
  /// Call FoldOverlay explicitly during the run (only meaningful for
  /// overlay-backed providers — i.e. all of them, post delta-overlay).
  bool fold_midrun = false;
  /// Assert the backend actually folded by the end.
  bool expect_folds = false;
};

std::unique_ptr<SearchService> BuildSharded(const DatasetConfig& config,
                                            size_t shards) {
  // The generator is deterministic: every backend consumes the identical
  // corpus and graph.
  Dataset dataset = GenerateDataset(config).value();
  if (shards == 0) {
    auto local = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
    EXPECT_TRUE(local.ok()) << local.status().ToString();
    return std::move(local).value();
  }
  ShardedSearchService::Options options;
  options.num_shards = shards;
  auto sharded = ShardedSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  return std::move(sharded).value();
}

std::unique_ptr<SearchService> BuildPartitioned(const DatasetConfig& config,
                                                size_t partitions,
                                                bool aggressive_folds) {
  Dataset dataset = GenerateDataset(config).value();
  LocalSearchService::Options options;
  options.engine.proximity_partitions = partitions;
  if (aggressive_folds) {
    // Fold after a handful of patched rows, so the run folds many times
    // mid-churn instead of once at the end.
    AdaptiveOverlayFoldPolicy::Options fold;
    fold.max_patch_rows = 6;
    options.engine.proximity_fold_policy =
        std::make_shared<AdaptiveOverlayFoldPolicy>(fold);
  }
  auto local = LocalSearchService::Build(std::move(dataset.graph),
                                         std::move(dataset.store),
                                         std::move(options));
  EXPECT_TRUE(local.ok()) << local.status().ToString();
  return std::move(local).value();
}

std::vector<Backend> BuildFleet(const DatasetConfig& config) {
  std::vector<Backend> fleet;
  for (const size_t shards : kShardCounts) {
    Backend b;
    b.service = BuildSharded(config, shards);
    b.label = std::to_string(shards) + "-shard";
    fleet.push_back(std::move(b));
  }
  for (const size_t partitions : kPartitionCounts) {
    // Partitioned routers run the aggressive policy + explicit mid-run
    // folds on the multi-partition variants; the 1-partition router keeps
    // the default policy (folds rarely if ever) as the contrast.
    Backend b;
    const bool aggressive = partitions > 1;
    b.service = BuildPartitioned(config, partitions, aggressive);
    b.label = std::to_string(partitions) + "-partition";
    b.fold_midrun = aggressive;
    b.expect_folds = aggressive;
    fleet.push_back(std::move(b));
  }
  return fleet;
}

std::vector<SearchRequest> ProbeRequests(uint64_t seed, size_t num_users) {
  Rng rng(seed);
  std::vector<SearchRequest> requests;
  for (int i = 0; i < 6; ++i) {
    SearchRequest request;
    request.query.user = static_cast<UserId>(rng.UniformIndex(num_users));
    request.query.tags = {static_cast<TagId>(rng.UniformIndex(120))};
    request.query.k = 1 + rng.UniformIndex(12);
    request.query.alpha = 0.2 + 0.6 * rng.UniformDouble();
    requests.push_back(request);
    // A tag-less pure-social feed for the same user: the query shape most
    // sensitive to graph churn.
    SearchRequest feed;
    feed.query.user = request.query.user;
    feed.query.alpha = 1.0;
    feed.query.k = 8;
    requests.push_back(feed);
  }
  return requests;
}

/// Bit-identical comparison with the boundary-tie relaxation of
/// sharded_invariance_test: scores must match bit-for-bit at every rank;
/// item ids must match wherever the score is unique and above the k-th
/// score's tie class.
void ExpectSameResponse(const Result<SearchResponse>& expected,
                        const Result<SearchResponse>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.ok(), actual.ok())
      << label << ": " << expected.status().ToString() << " vs "
      << actual.status().ToString();
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << label;
    return;
  }
  const auto& want = expected.value().items;
  const auto& got = actual.value().items;
  ASSERT_EQ(want.size(), got.size()) << label;
  const float boundary = want.empty() ? 0.0f : want.back().score;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].score, got[i].score) << label << " rank " << i;
    const bool tied =
        (i > 0 && want[i - 1].score == want[i].score) ||
        (i + 1 < want.size() && want[i + 1].score == want[i].score);
    if (!tied && want[i].score != boundary) {
      EXPECT_EQ(want[i].item, got[i].item) << label << " rank " << i;
    }
  }
}

TEST(FriendshipChurnInvarianceTest, InterleavedEditsAndQueriesStayIdentical) {
  for (const uint64_t seed : {3u, 21u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const DatasetConfig config = TestConfig(seed);

    // Reference: the serial single-engine replay (local backend). Every
    // fleet variant must track it through every edit.
    auto reference = BuildSharded(config, 0);
    std::vector<Backend> fleet = BuildFleet(config);
    const size_t num_users = reference->num_users();

    Rng rng(seed * 31 + 7);
    // Edges we added and can later remove (removing a random pair is
    // nearly always NotFound; churning our own additions exercises both
    // directions for real).
    std::vector<std::pair<UserId, UserId>> added;
    for (int step = 0; step < 30; ++step) {
      const bool remove = !added.empty() && rng.Bernoulli(0.4);
      UserId u, v;
      if (remove) {
        const size_t pick = rng.UniformIndex(added.size());
        u = added[pick].first;
        v = added[pick].second;
        added.erase(added.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        u = static_cast<UserId>(rng.UniformIndex(num_users));
        v = static_cast<UserId>(rng.UniformIndex(num_users));
      }

      // Apply the same edit everywhere; every backend must agree on the
      // verdict (Ok / AlreadyExists / NotFound / InvalidArgument).
      const Status expected_status = remove
                                         ? reference->RemoveFriendship(u, v)
                                         : reference->AddFriendship(u, v);
      for (const auto& backend : fleet) {
        const Status status = remove ? backend.service->RemoveFriendship(u, v)
                                     : backend.service->AddFriendship(u, v);
        EXPECT_EQ(expected_status.code(), status.code())
            << backend.label << " step " << step;
      }
      if (!remove && expected_status.ok()) added.push_back({u, v});

      // Fold mid-run on the designated backends only: a fold is a
      // representation change, so folding/never-folding backends must
      // stay indistinguishable query-by-query.
      if (step % 8 == 3) {
        for (const auto& backend : fleet) {
          if (backend.fold_midrun) {
            (void)backend.service->proximity_provider()->FoldOverlay();
          }
        }
      }

      // Probe after every few edits (every edit would be slow: each one
      // recomputes proximity for the probed users on every backend).
      if (step % 5 != 4) continue;
      const std::vector<SearchRequest> requests =
          ProbeRequests(seed * 131 + static_cast<uint64_t>(step), num_users);
      for (size_t i = 0; i < requests.size(); ++i) {
        const auto want = reference->Search(requests[i]);
        for (const auto& backend : fleet) {
          ExpectSameResponse(
              want, backend.service->Search(requests[i]),
              backend.label + " step " + std::to_string(step) + " request " +
                  std::to_string(i));
        }
      }
    }

    // Quiesced: all backends converged to the same final graph at the
    // same published generation count (folds must NOT have bumped it).
    for (const auto& backend : fleet) {
      const ProximityProviderStats stats =
          backend.service->proximity_stats();
      EXPECT_EQ(reference->proximity_stats().generations_published,
                stats.generations_published)
          << backend.label;
      if (backend.expect_folds) {
        EXPECT_GT(stats.overlay_folds, 0u) << backend.label;
      }
      for (UserId user = 0; user < 10; ++user) {
        EXPECT_EQ(reference->FriendsOf(user), backend.service->FriendsOf(user))
            << backend.label << " user " << user;
      }
    }
  }
}

}  // namespace
}  // namespace amici
