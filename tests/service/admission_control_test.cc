// Admission control at the SearchService edge: the gate order, the token
// bucket under a FAKE clock (no timing luck — every verdict here is a
// pure function of controller state), and the honest-response contract
// (shed = well-formed empty response, degrade = cheaper run, both
// reported in the response and the QoS counters — never a silent drop).

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

AdmissionController::Options BaseOptions() {
  AdmissionController::Options options;
  // Gates off unless a test arms them.
  options.max_inflight = 1024;
  return options;
}

TEST(AdmissionControllerTest, InflightGateShedsAndReleases) {
  auto options = BaseOptions();
  options.max_inflight = 2;
  AdmissionController controller(options);

  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);
  const auto shed = controller.Admit(1);
  EXPECT_EQ(shed.decision, AdmissionController::Decision::kShed);
  EXPECT_STREQ(shed.reason, "inflight");
  EXPECT_EQ(controller.inflight(), 2u);

  controller.Release();
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);

  const auto counters = controller.counters();
  EXPECT_EQ(counters.admitted, 3u);
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.peak_inflight, 2u);
}

TEST(AdmissionControllerTest, RateGateIsDeterministicUnderFakeClock) {
  double now_s = 0.0;
  auto options = BaseOptions();
  options.max_admitted_per_sec = 1.0;
  options.burst = 2.0;
  options.clock = [&now_s] { return now_s; };
  AdmissionController controller(options);

  // The bucket primes full: exactly `burst` admissions at t=0.
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);
  const auto shed = controller.Admit(1);
  EXPECT_EQ(shed.decision, AdmissionController::Decision::kShed);
  EXPECT_STREQ(shed.reason, "rate");

  // One second refills exactly one token — no more, no less.
  now_s = 1.0;
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kShed);
}

TEST(AdmissionControllerTest, CostGatesDegradeThenShed) {
  auto options = BaseOptions();
  options.degrade_cost = 100;
  options.shed_cost = 1000;
  AdmissionController controller(options);

  EXPECT_EQ(controller.Admit(50).decision,
            AdmissionController::Decision::kAdmit);
  const auto degrade = controller.Admit(500);
  EXPECT_EQ(degrade.decision, AdmissionController::Decision::kDegrade);
  EXPECT_STREQ(degrade.reason, "cost");
  const auto shed = controller.Admit(5000);
  EXPECT_EQ(shed.decision, AdmissionController::Decision::kShed);
  EXPECT_STREQ(shed.reason, "cost");

  const auto counters = controller.counters();
  EXPECT_EQ(counters.admitted, 1u);
  EXPECT_EQ(counters.degraded, 1u);
  EXPECT_EQ(counters.shed, 1u);
  // Degrades hold a slot like admits; sheds do not.
  EXPECT_EQ(controller.inflight(), 2u);
}

TEST(AdmissionControllerTest, PressureDegradesBeforeInflightSheds) {
  auto options = BaseOptions();
  options.max_inflight = 3;
  options.degrade_inflight = 1;
  AdmissionController controller(options);

  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kAdmit);
  const auto pressured = controller.Admit(1);
  EXPECT_EQ(pressured.decision, AdmissionController::Decision::kDegrade);
  EXPECT_STREQ(pressured.reason, "pressure");
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kDegrade);
  // Hard gate still wins once full.
  EXPECT_EQ(controller.Admit(1).decision,
            AdmissionController::Decision::kShed);
}

// --- Service-level: the QoS edge applies verdicts honestly --------------

std::unique_ptr<LocalSearchService> BuildService() {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.num_tags = 60;
  config.seed = 11;
  Dataset dataset = GenerateDataset(config).value();
  return LocalSearchService::Build(std::move(dataset.graph),
                                   std::move(dataset.store))
      .value();
}

SearchRequest TestRequest(UserId user) {
  SearchRequest request;
  request.query.user = user;
  request.query.tags = {2};
  request.query.k = 10;
  request.query.alpha = 0.5;
  return request;
}

TEST(AdmissionServiceTest, ShedResponseIsWellFormedAndCounted) {
  auto service = BuildService();
  const auto baseline = service->Search(TestRequest(7));
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline.value().items.empty());

  // Every query costs more than one candidate, so shed_cost = 1 sheds
  // everything — deterministically, no clock involved.
  auto options = BaseOptions();
  options.shed_cost = 1;
  service->EnableAdmissionControl(options);

  const auto shed = service->Search(TestRequest(7));
  ASSERT_TRUE(shed.ok()) << "shed must be a response, not an error";
  EXPECT_TRUE(shed.value().shed);
  EXPECT_TRUE(shed.value().items.empty());
  EXPECT_EQ(shed.value().shards_touched, 0u);
  EXPECT_EQ(shed.value().backend, "local");
  EXPECT_FALSE(shed.value().degraded);

  const auto qos = service->qos_counters();
  EXPECT_EQ(qos.shed, 1u);
  EXPECT_EQ(qos.admitted, 1u);  // the baseline ran pre-enable

  // Disabling restores pass-through, bit-identically.
  service->DisableAdmissionControl();
  const auto again = service->Search(TestRequest(7));
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().items.size(), baseline.value().items.size());
  for (size_t i = 0; i < again.value().items.size(); ++i) {
    EXPECT_EQ(again.value().items[i].item, baseline.value().items[i].item);
    EXPECT_EQ(again.value().items[i].score, baseline.value().items[i].score);
  }
}

TEST(AdmissionServiceTest, DegradeRunsCheaperAndSaysSo) {
  auto service = BuildService();
  const auto baseline = service->Search(TestRequest(7));
  ASSERT_TRUE(baseline.ok());
  ASSERT_GT(baseline.value().items.size(), 3u);

  auto options = BaseOptions();
  options.degrade_cost = 1;  // degrade everything
  options.degrade_algorithm = AlgorithmId::kMergeScan;
  options.degrade_k_cap = 3;
  service->EnableAdmissionControl(options);

  const auto degraded = service->Search(TestRequest(7));
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().degraded);
  EXPECT_FALSE(degraded.value().shed);
  EXPECT_EQ(degraded.value().algorithm, "merge-scan");
  ASSERT_EQ(degraded.value().items.size(), 3u);
  // Exact for WHAT RAN: merge-scan's top-3 is the true top-3, i.e. the
  // baseline's first three entries.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(degraded.value().items[i].item, baseline.value().items[i].item);
    EXPECT_EQ(degraded.value().items[i].score,
              baseline.value().items[i].score);
  }
  EXPECT_EQ(service->qos_counters().degraded, 1u);
}

TEST(AdmissionServiceTest, BatchAdmitsPerRow) {
  auto service = BuildService();

  // Fixed fake clock + burst 1: exactly one row of the batch runs, the
  // rest shed — deterministically, whatever the thread interleaving.
  double now_s = 0.0;
  auto options = BaseOptions();
  options.max_admitted_per_sec = 1.0;
  options.burst = 1.0;
  options.clock = [&now_s] { return now_s; };
  service->EnableAdmissionControl(options);

  std::vector<SearchRequest> requests = {TestRequest(5), TestRequest(6),
                                         TestRequest(7)};
  const auto responses = service->SearchBatch(requests);
  ASSERT_EQ(responses.size(), 3u);
  size_t ran = 0;
  size_t shed = 0;
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok());
    if (response.value().shed) {
      EXPECT_TRUE(response.value().items.empty());
      ++shed;
    } else {
      EXPECT_FALSE(response.value().items.empty());
      ++ran;
    }
  }
  EXPECT_EQ(ran, 1u);   // admission is per-row, in batch order
  EXPECT_EQ(shed, 2u);
  // The admitted row is the FIRST one (verdicts are taken in order,
  // before any dispatch).
  EXPECT_FALSE(responses[0].value().shed);

  const auto qos = service->qos_counters();
  EXPECT_EQ(qos.admitted, 1u);
  EXPECT_EQ(qos.shed, 2u);
}

TEST(AdmissionServiceTest, OpenGatesLeaveResponsesIdentical) {
  auto service = BuildService();
  const auto baseline = service->Search(TestRequest(9));
  ASSERT_TRUE(baseline.ok());

  // Controller installed but no gate can fire: the edge must be a
  // pass-through (the unshed/undegraded invariance half of the honest-
  // response contract).
  service->EnableAdmissionControl(BaseOptions());
  const auto gated = service->Search(TestRequest(9));
  ASSERT_TRUE(gated.ok());
  EXPECT_FALSE(gated.value().shed);
  EXPECT_FALSE(gated.value().degraded);
  ASSERT_EQ(gated.value().items.size(), baseline.value().items.size());
  for (size_t i = 0; i < gated.value().items.size(); ++i) {
    EXPECT_EQ(gated.value().items[i].item, baseline.value().items[i].item);
    EXPECT_EQ(gated.value().items[i].score, baseline.value().items[i].score);
  }
  EXPECT_EQ(gated.value().algorithm, baseline.value().algorithm);
}

TEST(AdmissionServiceTest, CostEstimateTracksTagFrequency) {
  auto service = BuildService();
  // A Zipf vocabulary: tag 0 is the most frequent. The estimate must
  // reflect that (kAny sums document frequencies).
  SocialQuery rare;
  rare.user = 1;
  rare.tags = {55};
  SocialQuery common;
  common.user = 1;
  common.tags = {0};
  EXPECT_GT(service->EstimateQueryCost(common),
            service->EstimateQueryCost(rare));
}

}  // namespace
}  // namespace amici
