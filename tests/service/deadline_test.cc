// SearchRequest::timeout_ms on the sharded backend: the fan-out loop
// checks the deadline between per-shard completions and returns a PARTIAL
// response (the exact merge of the shards that completed in time) instead
// of waiting for stragglers and reporting the overrun post-hoc.
//
// Determinism: a proximity model that sleeps makes every shard's first
// query for a user predictably slow, so a small deadline reliably expires
// mid-fan-out — no timing luck involved.

#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "proximity/common_neighbors.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

/// Delegates to a real model after a fixed nap — the "slow shard" fault
/// injection for deadline tests.
class SleepyProximityModel final : public ProximityModel {
 public:
  SleepyProximityModel(std::shared_ptr<const ProximityModel> inner,
                       std::chrono::milliseconds nap)
      : inner_(std::move(inner)), nap_(nap) {}

  std::string_view name() const override { return "sleepy"; }

  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override {
    std::this_thread::sleep_for(nap_);
    return inner_->Compute(graph, source);
  }

 private:
  std::shared_ptr<const ProximityModel> inner_;
  std::chrono::milliseconds nap_;
};

std::unique_ptr<ShardedSearchService> BuildSleepyService(
    std::chrono::milliseconds nap) {
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  config.num_tags = 80;
  config.seed = 5;
  Dataset dataset = GenerateDataset(config).value();
  ShardedSearchService::Options options;
  options.num_shards = 3;
  options.engine.proximity_model = std::make_shared<SleepyProximityModel>(
      std::make_shared<CommonNeighborsProximity>(), nap);
  return ShardedSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store),
                                     std::move(options))
      .value();
}

SearchRequest TestRequest(UserId user, double timeout_ms) {
  SearchRequest request;
  request.query.user = user;
  request.query.tags = {3};
  request.query.k = 10;
  request.query.alpha = 0.5;
  request.timeout_ms = timeout_ms;
  return request;
}

TEST(ShardedDeadlineTest, ExpiredDeadlineReturnsPartialResponse) {
  auto service = BuildSleepyService(std::chrono::milliseconds(250));

  // Every shard needs ~250ms (proximity cache miss); 30ms cannot cover
  // the fan-out, so the request must come back early and partial.
  const auto response = service->Search(TestRequest(/*user=*/7,
                                                   /*timeout_ms=*/30.0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().deadline_exceeded);
  EXPECT_LT(response.value().shards_touched, service->num_shards());
  // The response came back near the deadline, not after ~750ms of
  // stragglers (generous bound: scheduling noise, sanitizers).
  EXPECT_LT(response.value().elapsed_ms, 200.0);

  // The service is fully functional afterwards: the same query WITHOUT a
  // deadline completes on every shard (stragglers of the abandoned row
  // have warmed the caches by then or simply finish harmlessly).
  const auto full = service->Search(TestRequest(/*user=*/7,
                                                /*timeout_ms=*/0.0));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.value().deadline_exceeded);
  EXPECT_EQ(full.value().shards_touched, service->num_shards());
  // The partial items it DID return are a prefix-consistent subset: all
  // scores it reported appear in the full answer at the same or better
  // rank order.
  const auto& partial_items = response.value().items;
  const auto& full_items = full.value().items;
  for (size_t i = 0, j = 0; i < partial_items.size(); ++i) {
    bool found = false;
    for (; j < full_items.size(); ++j) {
      if (full_items[j].item == partial_items[i].item &&
          full_items[j].score == partial_items[i].score) {
        found = true;
        ++j;
        break;
      }
    }
    EXPECT_TRUE(found) << "partial rank " << i
                       << " not found in order in the full response";
  }
}

TEST(ShardedDeadlineTest, GenerousDeadlineCompletesEveryShard) {
  auto service = BuildSleepyService(std::chrono::milliseconds(1));
  const auto response = service->Search(TestRequest(/*user=*/11,
                                                    /*timeout_ms=*/60000.0));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().deadline_exceeded);
  EXPECT_EQ(response.value().shards_touched, service->num_shards());
}

TEST(ShardedDeadlineTest, BatchMixesDeadlinedAndUnboundedRequests) {
  auto service = BuildSleepyService(std::chrono::milliseconds(150));
  std::vector<SearchRequest> requests;
  requests.push_back(TestRequest(/*user=*/20, /*timeout_ms=*/20.0));
  requests.push_back(TestRequest(/*user=*/21, /*timeout_ms=*/0.0));
  const auto responses = service->SearchBatch(requests);
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].ok());
  ASSERT_TRUE(responses[1].ok());
  // The deadlined slot is partial; the unbounded slot waited for every
  // shard regardless of its neighbour's deadline.
  EXPECT_TRUE(responses[0].value().deadline_exceeded);
  EXPECT_EQ(responses[1].value().shards_touched, service->num_shards());
  EXPECT_FALSE(responses[1].value().deadline_exceeded);
}

TEST(ShardedDeadlineTest, BatchMixesZeroTightAndGenerousDeadlines) {
  auto service = BuildSleepyService(std::chrono::milliseconds(150));
  std::vector<SearchRequest> requests;
  requests.push_back(TestRequest(/*user=*/30, /*timeout_ms=*/0.0));
  requests.push_back(TestRequest(/*user=*/31, /*timeout_ms=*/20.0));
  requests.push_back(TestRequest(/*user=*/32, /*timeout_ms=*/60000.0));
  const auto responses = service->SearchBatch(requests);
  ASSERT_EQ(responses.size(), 3u);
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  // Each row enforced ITS OWN deadline: the unbounded and the generous
  // rows completed every shard, the tight row came back partial — with
  // its abandoned shards counted, not silently dropped.
  EXPECT_FALSE(responses[0].value().deadline_exceeded);
  EXPECT_EQ(responses[0].value().shards_touched, service->num_shards());
  // The tight row overran its own 20ms budget (every shard's first
  // proximity computation naps 150ms) and says so; whether its shards
  // were abandoned at the barrier, truncated mid-algorithm, or merely
  // late depends on scheduling, but the accounting always balances.
  EXPECT_TRUE(responses[1].value().deadline_exceeded);
  EXPECT_EQ(responses[1].value().shards_touched +
                responses[1].value().shards_abandoned,
            service->num_shards());
  EXPECT_FALSE(responses[2].value().deadline_exceeded);
  EXPECT_EQ(responses[2].value().shards_touched, service->num_shards());
}

// --- Mid-algorithm cancellation (inside one shard) ----------------------

std::unique_ptr<LocalSearchService> BuildBigLocalService(
    std::chrono::milliseconds nap) {
  // Big enough that an untimed query decodes MANY posting-list blocks —
  // the truncation twin below needs headroom to be strictly cheaper.
  DatasetConfig config = SmallDataset();
  config.num_users = 2000;
  config.num_tags = 50;
  config.seed = 13;
  Dataset dataset = GenerateDataset(config).value();
  LocalSearchService::Options options;
  options.engine.proximity_model = std::make_shared<SleepyProximityModel>(
      std::make_shared<CommonNeighborsProximity>(), nap);
  return LocalSearchService::Build(std::move(dataset.graph),
                                   std::move(dataset.store),
                                   std::move(options))
      .value();
}

SearchRequest CommonTagRequest(double timeout_ms) {
  SearchRequest request;
  request.query.user = 42;
  request.query.tags = {0};  // Zipf head: the longest posting list
  request.query.k = 10;
  request.query.alpha = 0.5;
  request.algorithm = AlgorithmId::kMergeScan;
  request.timeout_ms = timeout_ms;
  return request;
}

TEST(MidShardCancellationTest, ExpiredDeadlineStopsInsideTheAlgorithm) {
  // The sleepy nap sits in the proximity model — INSIDE the engine's
  // query path, before the algorithm runs — so a deadline shorter than
  // the nap is deterministically expired when the algorithm starts: the
  // very first cooperative probe fires and the scan stops mid-run.
  auto service = BuildBigLocalService(std::chrono::milliseconds(30));

  // Tight twin FIRST: its proximity cache miss naps 30ms, so the 5ms
  // token is deterministically expired when the scan starts. (The other
  // order would warm the cache and skip the nap.)
  const auto tight = service->Search(CommonTagRequest(/*timeout_ms=*/5.0));
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_TRUE(tight.value().stats.truncated);
  EXPECT_TRUE(tight.value().deadline_exceeded);

  const auto full = service->Search(CommonTagRequest(/*timeout_ms=*/0.0));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full.value().stats.truncated);

  // The acceptance bar for "stops mid-shard": strictly less decode work
  // than the no-deadline twin, not a post-hoc overrun report.
  EXPECT_LT(tight.value().stats.aggregation.blocks_decoded,
            full.value().stats.aggregation.blocks_decoded);
  EXPECT_LT(tight.value().stats.items_considered,
            full.value().stats.items_considered);
}

// --- Invariance: a token that never fires changes nothing ---------------

void ExpectBitIdentical(const SearchResponse& want,
                        const SearchResponse& got) {
  ASSERT_EQ(want.items.size(), got.items.size());
  for (size_t i = 0; i < want.items.size(); ++i) {
    EXPECT_EQ(want.items[i].item, got.items[i].item);
    EXPECT_EQ(want.items[i].score, got.items[i].score);  // bit-exact
  }
  EXPECT_EQ(want.algorithm, got.algorithm);
  // Same WORK, not just the same answer: cancellation must be strictly
  // an early-exit, invisible until the first positive expiry.
  EXPECT_EQ(want.stats.items_considered, got.stats.items_considered);
  EXPECT_EQ(want.stats.tail_items_scanned, got.stats.tail_items_scanned);
  EXPECT_EQ(want.stats.aggregation.sorted_accesses,
            got.stats.aggregation.sorted_accesses);
  EXPECT_EQ(want.stats.aggregation.random_accesses,
            got.stats.aggregation.random_accesses);
  EXPECT_EQ(want.stats.aggregation.blocks_decoded,
            got.stats.aggregation.blocks_decoded);
  EXPECT_EQ(want.stats.aggregation.blocks_skipped,
            got.stats.aggregation.blocks_skipped);
  EXPECT_FALSE(got.stats.truncated);
  EXPECT_FALSE(got.deadline_exceeded);
}

TEST(DeadlineInvarianceTest, ArmedButUnexpiredTokenIsBitIdentical) {
  auto service = BuildSleepyService(std::chrono::milliseconds(0));
  std::mt19937 rng(77);
  std::uniform_int_distribution<UserId> user_dist(0, 199);
  std::uniform_int_distribution<TagId> tag_dist(0, 79);
  std::uniform_int_distribution<size_t> k_dist(5, 20);

  for (int round = 0; round < 25; ++round) {
    SearchRequest request;
    request.query.user = user_dist(rng);
    request.query.tags = {tag_dist(rng)};
    request.query.k = k_dist(rng);
    request.query.alpha = 0.5;
    if (round % 3 == 0) request.max_per_owner = 2;

    // Warm the proximity cache so the twins do identical work (the
    // first-touch computation is a per-user one-off, not token-related).
    ASSERT_TRUE(service->Search(request).ok());

    const auto untimed = service->Search(request);
    SearchRequest timed = request;
    timed.timeout_ms = 60000.0;  // armed, but can never fire
    const auto generous = service->Search(timed);
    ASSERT_TRUE(untimed.ok());
    ASSERT_TRUE(generous.ok());
    ExpectBitIdentical(untimed.value(), generous.value());
  }
}

}  // namespace
}  // namespace amici
