// SearchRequest::timeout_ms on the sharded backend: the fan-out loop
// checks the deadline between per-shard completions and returns a PARTIAL
// response (the exact merge of the shards that completed in time) instead
// of waiting for stragglers and reporting the overrun post-hoc.
//
// Determinism: a proximity model that sleeps makes every shard's first
// query for a user predictably slow, so a small deadline reliably expires
// mid-fan-out — no timing luck involved.

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "proximity/common_neighbors.h"
#include "service/sharded_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

/// Delegates to a real model after a fixed nap — the "slow shard" fault
/// injection for deadline tests.
class SleepyProximityModel final : public ProximityModel {
 public:
  SleepyProximityModel(std::shared_ptr<const ProximityModel> inner,
                       std::chrono::milliseconds nap)
      : inner_(std::move(inner)), nap_(nap) {}

  std::string_view name() const override { return "sleepy"; }

  ProximityVector Compute(const SocialGraph& graph,
                          UserId source) const override {
    std::this_thread::sleep_for(nap_);
    return inner_->Compute(graph, source);
  }

 private:
  std::shared_ptr<const ProximityModel> inner_;
  std::chrono::milliseconds nap_;
};

std::unique_ptr<ShardedSearchService> BuildSleepyService(
    std::chrono::milliseconds nap) {
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  config.num_tags = 80;
  config.seed = 5;
  Dataset dataset = GenerateDataset(config).value();
  ShardedSearchService::Options options;
  options.num_shards = 3;
  options.engine.proximity_model = std::make_shared<SleepyProximityModel>(
      std::make_shared<CommonNeighborsProximity>(), nap);
  return ShardedSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store),
                                     std::move(options))
      .value();
}

SearchRequest TestRequest(UserId user, double timeout_ms) {
  SearchRequest request;
  request.query.user = user;
  request.query.tags = {3};
  request.query.k = 10;
  request.query.alpha = 0.5;
  request.timeout_ms = timeout_ms;
  return request;
}

TEST(ShardedDeadlineTest, ExpiredDeadlineReturnsPartialResponse) {
  auto service = BuildSleepyService(std::chrono::milliseconds(250));

  // Every shard needs ~250ms (proximity cache miss); 30ms cannot cover
  // the fan-out, so the request must come back early and partial.
  const auto response = service->Search(TestRequest(/*user=*/7,
                                                   /*timeout_ms=*/30.0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().deadline_exceeded);
  EXPECT_LT(response.value().shards_touched, service->num_shards());
  // The response came back near the deadline, not after ~750ms of
  // stragglers (generous bound: scheduling noise, sanitizers).
  EXPECT_LT(response.value().elapsed_ms, 200.0);

  // The service is fully functional afterwards: the same query WITHOUT a
  // deadline completes on every shard (stragglers of the abandoned row
  // have warmed the caches by then or simply finish harmlessly).
  const auto full = service->Search(TestRequest(/*user=*/7,
                                                /*timeout_ms=*/0.0));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.value().deadline_exceeded);
  EXPECT_EQ(full.value().shards_touched, service->num_shards());
  // The partial items it DID return are a prefix-consistent subset: all
  // scores it reported appear in the full answer at the same or better
  // rank order.
  const auto& partial_items = response.value().items;
  const auto& full_items = full.value().items;
  for (size_t i = 0, j = 0; i < partial_items.size(); ++i) {
    bool found = false;
    for (; j < full_items.size(); ++j) {
      if (full_items[j].item == partial_items[i].item &&
          full_items[j].score == partial_items[i].score) {
        found = true;
        ++j;
        break;
      }
    }
    EXPECT_TRUE(found) << "partial rank " << i
                       << " not found in order in the full response";
  }
}

TEST(ShardedDeadlineTest, GenerousDeadlineCompletesEveryShard) {
  auto service = BuildSleepyService(std::chrono::milliseconds(1));
  const auto response = service->Search(TestRequest(/*user=*/11,
                                                    /*timeout_ms=*/60000.0));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().deadline_exceeded);
  EXPECT_EQ(response.value().shards_touched, service->num_shards());
}

TEST(ShardedDeadlineTest, BatchMixesDeadlinedAndUnboundedRequests) {
  auto service = BuildSleepyService(std::chrono::milliseconds(150));
  std::vector<SearchRequest> requests;
  requests.push_back(TestRequest(/*user=*/20, /*timeout_ms=*/20.0));
  requests.push_back(TestRequest(/*user=*/21, /*timeout_ms=*/0.0));
  const auto responses = service->SearchBatch(requests);
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].ok());
  ASSERT_TRUE(responses[1].ok());
  // The deadlined slot is partial; the unbounded slot waited for every
  // shard regardless of its neighbour's deadline.
  EXPECT_TRUE(responses[0].value().deadline_exceeded);
  EXPECT_EQ(responses[1].value().shards_touched, service->num_shards());
  EXPECT_FALSE(responses[1].value().deadline_exceeded);
}

}  // namespace
}  // namespace amici
