// Concurrency through the ShardedSearchService: reader threads issuing
// Search / SearchBatch while a writer ingests (AddItem + AddItems batches)
// and compacts. Responses observed mid-flight must be internally
// consistent (ordered, deduplicated, ids within the visible corpus); the
// final state must match a LocalSearchService fed the identical mutation
// sequence. Run under -fsanitize=thread to check the id-map publication
// protocol (mapping rows must be visible before a shard snapshot exposes
// the item).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

TEST(ShardedConcurrencyTest, QueriesStayConsistentDuringIngestAndCompact) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.items_per_user = 3.0;
  config.num_tags = 100;
  config.seed = 909;
  Dataset dataset = GenerateDataset(config).value();
  Dataset workload_view = GenerateDataset(config).value();

  ShardedSearchService::Options options;
  options.num_shards = 4;
  auto built = ShardedSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store),
                                           std::move(options));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto service = std::move(built).value();

  QueryWorkloadConfig workload;
  workload.num_queries = 24;
  workload.seed = 31;
  const auto queries = GenerateQueries(workload_view, workload).value();

  // The full mutation script, fixed up front so a local replica can
  // replay it afterwards.
  Rng rng(515);
  std::vector<Item> script;
  for (int i = 0; i < 120; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(300));
    item.tags = {static_cast<TagId>(rng.UniformIndex(100))};
    item.quality = static_cast<float>(rng.UniformDouble());
    script.push_back(item);
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng reader_rng(1000 + t);
      while (!done.load(std::memory_order_acquire)) {
        const SocialQuery& query =
            queries[reader_rng.UniformIndex(queries.size())];
        SearchRequest request;
        request.query = query;
        if (reader_rng.Bernoulli(0.3)) request.max_per_owner = 2;
        const auto response = service->Search(request);
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Internal consistency: ordered, unique, within the corpus the
        // service has published so far (num_items only grows).
        const size_t bound = service->num_items();
        const auto& items = response.value().items;
        for (size_t i = 0; i < items.size(); ++i) {
          if (items[i].item >= bound) failures.fetch_add(1);
          if (i > 0 && items[i - 1].score < items[i].score) {
            failures.fetch_add(1);
          }
          for (size_t j = 0; j < i; ++j) {
            if (items[j].item == items[i].item) failures.fetch_add(1);
          }
        }
      }
    });
  }

  // Writer: mixed single and batched ingest, periodic compaction.
  size_t next = 0;
  while (next < script.size()) {
    if (next % 30 == 0 && next > 0) {
      ASSERT_TRUE(service->Compact().ok());
    }
    if (next % 3 == 0 && next + 5 <= script.size()) {
      const std::span<const Item> batch(script.data() + next, 5);
      ASSERT_TRUE(service->AddItems(batch).ok());
      next += 5;
    } else {
      ASSERT_TRUE(service->AddItem(script[next]).ok());
      ++next;
    }
  }
  ASSERT_TRUE(service->Compact().ok());
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-hoc exactness: a local replica fed the same script agrees.
  Dataset replica = GenerateDataset(config).value();
  auto local = LocalSearchService::Build(std::move(replica.graph),
                                         std::move(replica.store))
                   .value();
  ASSERT_TRUE(local->AddItems(script).ok());
  ASSERT_EQ(local->num_items(), service->num_items());
  for (const SocialQuery& query : queries) {
    SearchRequest request;
    request.query = query;
    const auto expected = local->Search(request);
    const auto actual = service->Search(request);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(expected.value().items.size(), actual.value().items.size());
    for (size_t i = 0; i < expected.value().items.size(); ++i) {
      EXPECT_EQ(expected.value().items[i].item, actual.value().items[i].item);
      EXPECT_EQ(expected.value().items[i].score,
                actual.value().items[i].score);
    }
  }
}

}  // namespace
}  // namespace amici
