// Contract tests for the SearchService surface, run against BOTH
// backends: labels, global id assignment, request options (algorithm
// hint, max_per_owner, deadline stub), error propagation, and the
// all-or-nothing AddItems batch.

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/graph_builder.h"
#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

DatasetConfig ContractConfig() {
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  config.items_per_user = 3.0;
  config.num_tags = 80;
  config.geo_fraction = 0.0;
  config.seed = 77;
  return config;
}

std::unique_ptr<SearchService> BuildBackend(bool sharded) {
  Dataset dataset = GenerateDataset(ContractConfig()).value();
  if (!sharded) {
    return LocalSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store))
        .value();
  }
  ShardedSearchService::Options options;
  options.num_shards = 3;
  return ShardedSearchService::Build(std::move(dataset.graph),
                                     std::move(dataset.store),
                                     std::move(options))
      .value();
}

class SearchServiceContractTest : public ::testing::TestWithParam<bool> {};

TEST_P(SearchServiceContractTest, BackendIdentity) {
  const auto service = BuildBackend(GetParam());
  if (GetParam()) {
    EXPECT_EQ(service->backend_name(), "sharded/3");
    EXPECT_EQ(service->num_shards(), 3u);
  } else {
    EXPECT_EQ(service->backend_name(), "local");
    EXPECT_EQ(service->num_shards(), 1u);
  }
  EXPECT_EQ(service->num_users(), 200u);
  EXPECT_GT(service->num_items(), 0u);
}

TEST_P(SearchServiceContractTest, SearchCarriesLabelsAndOrdering) {
  const auto service = BuildBackend(GetParam());
  SearchRequest request;
  request.query.user = 7;
  request.query.tags = {0, 1};
  request.query.k = 10;
  const auto response = service->Search(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().backend, service->backend_name());
  EXPECT_EQ(response.value().algorithm, "hybrid");
  EXPECT_EQ(response.value().shards_touched, service->num_shards());
  EXPECT_FALSE(response.value().deadline_exceeded);
  const auto& items = response.value().items;
  ASSERT_FALSE(items.empty());
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i - 1].score, items[i].score) << "rank " << i;
  }
  for (const ScoredItem& item : items) {
    EXPECT_LT(item.item, service->num_items());
  }

  request.algorithm = AlgorithmId::kMergeScan;
  const auto hinted = service->Search(request);
  ASSERT_TRUE(hinted.ok());
  EXPECT_EQ(hinted.value().algorithm, "merge-scan");
}

TEST_P(SearchServiceContractTest, MaxPerOwnerCapsOwners) {
  const auto service = BuildBackend(GetParam());
  SearchRequest request;
  request.query.user = 7;
  request.query.tags = {0};
  request.query.alpha = 0.2;
  request.query.k = 12;
  request.max_per_owner = 1;
  const auto response = service->Search(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  std::vector<UserId> owners;
  for (const ScoredItem& item : response.value().items) {
    owners.push_back(service->OwnerOf(item.item));
  }
  std::sort(owners.begin(), owners.end());
  EXPECT_EQ(std::adjacent_find(owners.begin(), owners.end()), owners.end())
      << "an owner appears twice despite max_per_owner = 1";
}

TEST_P(SearchServiceContractTest, DeadlineStubFlagsOverruns) {
  const auto service = BuildBackend(GetParam());
  SearchRequest request;
  request.query.user = 3;
  request.query.tags = {0};
  request.timeout_ms = 1e-9;  // everything overruns this
  const auto overrun = service->Search(request);
  ASSERT_TRUE(overrun.ok());
  EXPECT_TRUE(overrun.value().deadline_exceeded);

  request.timeout_ms = 60000.0;
  const auto relaxed = service->Search(request);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_FALSE(relaxed.value().deadline_exceeded);
}

TEST_P(SearchServiceContractTest, InvalidRequestsPropagateStatus) {
  const auto service = BuildBackend(GetParam());
  SearchRequest request;
  request.query.user = 100000;  // out of range
  request.query.tags = {0};
  EXPECT_EQ(service->Search(request).status().code(),
            StatusCode::kInvalidArgument);

  request.query.user = 1;
  request.query.k = 0;
  EXPECT_EQ(service->Search(request).status().code(),
            StatusCode::kInvalidArgument);

  // Tag-less is only legal as a pure-social feed.
  request.query.k = 5;
  request.query.tags = {};
  request.query.alpha = 0.5;
  EXPECT_EQ(service->Search(request).status().code(),
            StatusCode::kInvalidArgument);
  request.query.alpha = 1.0;
  EXPECT_TRUE(service->Search(request).ok());
}

TEST_P(SearchServiceContractTest, SearchBatchAlignsWithSerialExecution) {
  const auto service = BuildBackend(GetParam());
  std::vector<SearchRequest> requests;
  for (UserId user = 0; user < 12; ++user) {
    SearchRequest request;
    request.query.user = user;
    request.query.tags = {static_cast<TagId>(user % 5)};
    request.query.k = 6;
    if (user % 3 == 0) request.max_per_owner = 2;
    requests.push_back(request);
  }
  requests[4].query.user = 100000;  // one poisoned slot must not sink the rest

  const auto batch = service->SearchBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto serial = service->Search(requests[i]);
    ASSERT_EQ(serial.ok(), batch[i].ok()) << "slot " << i;
    if (!serial.ok()) continue;
    ASSERT_EQ(serial.value().items.size(), batch[i].value().items.size());
    for (size_t r = 0; r < serial.value().items.size(); ++r) {
      EXPECT_EQ(serial.value().items[r].item, batch[i].value().items[r].item);
      EXPECT_EQ(serial.value().items[r].score,
                batch[i].value().items[r].score);
    }
  }
}

TEST_P(SearchServiceContractTest, AddItemsIsAllOrNothing) {
  const auto service = BuildBackend(GetParam());
  const size_t before = service->num_items();

  std::vector<Item> bad(3);
  for (auto& item : bad) {
    item.owner = 1;
    item.tags = {2};
    item.quality = 0.5f;
  }
  bad[2].quality = 2.0f;  // invalid
  const auto rejected = service->AddItems(bad);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service->num_items(), before) << "partial batch leaked in";

  bad[2].quality = 0.9f;
  const auto accepted = service->AddItems(bad);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  ASSERT_EQ(accepted.value().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(accepted.value()[i], static_cast<ItemId>(before + i))
        << "global ids must stay dense, in batch order";
    EXPECT_EQ(service->OwnerOf(accepted.value()[i]), 1u);
    EXPECT_EQ(service->TagsOf(accepted.value()[i]), std::vector<TagId>{2});
  }
  EXPECT_EQ(service->num_items(), before + 3);
  EXPECT_GE(service->unindexed_items(), 3u);
  ASSERT_TRUE(service->Compact().ok());
  EXPECT_EQ(service->unindexed_items(), 0u);
}

TEST_P(SearchServiceContractTest, FriendshipEditsFollowEngineSemantics) {
  const auto service = BuildBackend(GetParam());
  // Find a non-edge deterministically.
  UserId u = 0, v = 0;
  for (UserId a = 0; a < 10 && v == 0; ++a) {
    const auto friends = service->FriendsOf(a);
    for (UserId b = a + 1; b < 50; ++b) {
      if (std::find(friends.begin(), friends.end(), b) == friends.end()) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, v);
  EXPECT_TRUE(service->AddFriendship(u, v).ok());
  EXPECT_EQ(service->AddFriendship(u, v).code(), StatusCode::kAlreadyExists);
  const auto friends = service->FriendsOf(u);
  EXPECT_NE(std::find(friends.begin(), friends.end(), v), friends.end());
  EXPECT_TRUE(service->RemoveFriendship(u, v).ok());
  EXPECT_EQ(service->RemoveFriendship(u, v).code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Backends, SearchServiceContractTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sharded" : "Local";
                         });

}  // namespace
}  // namespace amici
