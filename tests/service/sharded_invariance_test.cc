// The acceptance property of the service redesign: a ShardedSearchService
// over ANY shard count returns bit-identical top-k (items AND scores) to
// LocalSearchService on the same corpus — for plain, owner-diversified,
// geo-filtered and batch requests, across algorithm hints, and across
// mutations (ingest, friendship churn, per-backend compaction).
//
// Why bit-identical is achievable: the graph is replicated to every
// shard, so proximity vectors — and hence every blended score — are
// computed by the exact same code on the exact same inputs; the merge
// only reorders ScoredItems, never recomputes them.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 7};

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 350;
  config.items_per_user = 4.0;
  config.num_tags = 200;
  config.geo_fraction = 0.4;
  config.seed = seed;
  return config;
}

std::unique_ptr<SearchService> BuildLocal(const DatasetConfig& config) {
  Dataset dataset = GenerateDataset(config).value();
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

std::unique_ptr<SearchService> BuildSharded(const DatasetConfig& config,
                                            size_t num_shards) {
  // The generator is deterministic: regenerating yields the identical
  // corpus the local backend consumed.
  Dataset dataset = GenerateDataset(config).value();
  ShardedSearchService::Options options;
  options.num_shards = num_shards;
  auto service = ShardedSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

/// Builds the randomized request mix the property is asserted over:
/// plain, algorithm-hinted, owner-diversified, tag-less pure-social, and
/// geo-filtered requests.
std::vector<SearchRequest> BuildRequests(const DatasetConfig& config) {
  Dataset workload_view = GenerateDataset(config).value();
  std::vector<SearchRequest> requests;

  QueryWorkloadConfig plain;
  plain.num_queries = 10;
  plain.seed = config.seed * 13 + 1;
  const std::vector<SocialQuery> plain_queries =
      GenerateQueries(workload_view, plain).value();
  for (const SocialQuery& query : plain_queries) {
    SearchRequest request;
    request.query = query;
    requests.push_back(request);
  }

  QueryWorkloadConfig geo;
  geo.num_queries = 6;
  geo.with_geo_filter = true;
  geo.radius_km = 25.0;
  geo.seed = config.seed * 13 + 2;
  const std::vector<SocialQuery> geo_queries =
      GenerateQueries(workload_view, geo).value();
  for (const SocialQuery& query : geo_queries) {
    SearchRequest request;
    request.query = query;
    requests.push_back(request);
    request.algorithm = AlgorithmId::kGeoGrid;  // hint must not change results
    requests.push_back(request);
  }

  // Derived variants of the plain mix: hints, diversity, blends. Diverse
  // requests stay on blended (continuous-score) queries — exact score
  // ties are measure-zero there, so the owner-capped selection is unique.
  Rng rng(config.seed * 13 + 3);
  const size_t plain_count = 10;
  for (size_t i = 0; i < plain_count; ++i) {
    SearchRequest request = requests[i];
    request.query.alpha = 0.2 + 0.6 * rng.UniformDouble();
    request.query.k = 1 + rng.UniformIndex(20);
    request.algorithm = rng.Bernoulli(0.5) ? AlgorithmId::kMergeScan
                                           : AlgorithmId::kNra;
    requests.push_back(request);

    SearchRequest diverse = requests[i];
    diverse.max_per_owner = 1 + rng.UniformIndex(3);
    requests.push_back(diverse);
  }

  // Tag-less pure-social feeds (the alpha == 1.0 relaxation). Feeds are
  // tie-heavy (every item of one owner scores the same), which is exactly
  // what the boundary-aware comparison in ExpectSameResponse is for.
  for (const UserId user : {UserId{3}, UserId{42}, UserId{117}}) {
    SearchRequest feed;
    feed.query.user = user;
    feed.query.alpha = 1.0;
    feed.query.k = 8;
    requests.push_back(feed);
  }
  return requests;
}

void ExpectSameResponse(const Result<SearchResponse>& expected,
                        const Result<SearchResponse>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.ok(), actual.ok())
      << label << ": " << expected.status().ToString() << " vs "
      << actual.status().ToString();
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << label;
    return;
  }
  const auto& want = expected.value().items;
  const auto& got = actual.value().items;
  ASSERT_EQ(want.size(), got.size()) << label;
  // Every exact top-k contains ALL items scoring strictly above the k-th
  // score; membership AT the k-th score is algorithm-discretionary when a
  // tie class straddles the boundary, and entries whose FLOAT-rounded
  // scores collide may order/select differently (the engines rank on
  // internal doubles, responses carry floats). So: scores must match
  // bit-for-bit at every rank, and item ids must match wherever the score
  // is unique in the list and above the boundary tie class.
  const float boundary = want.empty() ? 0.0f : want.back().score;
  for (size_t i = 0; i < want.size(); ++i) {
    // Bit-identical, not merely close: same inputs, same code, per shard.
    EXPECT_EQ(want[i].score, got[i].score) << label << " rank " << i;
    const bool tied =
        (i > 0 && want[i - 1].score == want[i].score) ||
        (i + 1 < want.size() && want[i + 1].score == want[i].score);
    if (!tied && want[i].score != boundary) {
      EXPECT_EQ(want[i].item, got[i].item) << label << " rank " << i;
    }
  }
}

void ExpectInvariant(SearchService* local,
                     std::span<const std::unique_ptr<SearchService>> sharded,
                     std::span<const SearchRequest> requests,
                     const std::string& phase) {
  // One request at a time...
  std::vector<Result<SearchResponse>> reference;
  for (const SearchRequest& request : requests) {
    reference.push_back(local->Search(request));
  }
  for (const auto& service : sharded) {
    const std::string label =
        phase + " " + std::string(service->backend_name());
    for (size_t i = 0; i < requests.size(); ++i) {
      ExpectSameResponse(reference[i], service->Search(requests[i]),
                         label + " request " + std::to_string(i));
    }
    // ...and the whole mix as one batch.
    const auto batch = service->SearchBatch(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ExpectSameResponse(reference[i], batch[i],
                         label + " batch slot " + std::to_string(i));
    }
  }
}

TEST(ShardedInvarianceTest, AllShardCountsMatchLocalAcrossMutations) {
  for (const uint64_t seed : {11u, 29u}) {
    SCOPED_TRACE("dataset seed " + std::to_string(seed));
    const DatasetConfig config = TestConfig(seed);
    auto local = BuildLocal(config);
    std::vector<std::unique_ptr<SearchService>> sharded;
    for (const size_t shards : kShardCounts) {
      sharded.push_back(BuildSharded(config, shards));
    }
    const std::vector<SearchRequest> requests = BuildRequests(config);

    ExpectInvariant(local.get(), sharded, requests, "fresh");

    // --- Mutations, applied identically to every backend. -------------
    Rng rng(seed * 7 + 5);
    const size_t num_users = local->num_users();
    std::vector<Item> batch;
    for (int i = 0; i < 40; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
      item.tags = {static_cast<TagId>(rng.UniformIndex(200))};
      if (rng.Bernoulli(0.4)) {
        item.tags.push_back(static_cast<TagId>(rng.UniformIndex(200)));
      }
      item.quality = static_cast<float>(rng.UniformDouble());
      if (rng.Bernoulli(0.3)) {
        item.has_geo = true;
        item.latitude = static_cast<float>(rng.UniformDouble() - 0.5);
        item.longitude = static_cast<float>(rng.UniformDouble() - 0.5);
      }
      batch.push_back(item);
    }
    // Half through the batched path, half one-by-one; global ids must
    // come out dense and identical on every backend.
    const std::span<const Item> first_half(batch.data(), 20);
    const auto local_ids = local->AddItems(first_half);
    ASSERT_TRUE(local_ids.ok()) << local_ids.status().ToString();
    for (const auto& service : sharded) {
      const auto ids = service->AddItems(first_half);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      EXPECT_EQ(local_ids.value(), ids.value()) << service->backend_name();
    }
    for (size_t i = 20; i < batch.size(); ++i) {
      const auto local_id = local->AddItem(batch[i]);
      ASSERT_TRUE(local_id.ok());
      for (const auto& service : sharded) {
        const auto id = service->AddItem(batch[i]);
        ASSERT_TRUE(id.ok());
        EXPECT_EQ(local_id.value(), id.value()) << service->backend_name();
      }
    }
    // A couple of friendship flips.
    for (int flip = 0; flip < 3; ++flip) {
      const UserId u = static_cast<UserId>(rng.UniformIndex(num_users));
      const UserId v = static_cast<UserId>(rng.UniformIndex(num_users));
      if (u == v) continue;
      const Status local_status = local->AddFriendship(u, v);
      for (const auto& service : sharded) {
        const Status status = service->AddFriendship(u, v);
        EXPECT_EQ(local_status.code(), status.code())
            << service->backend_name();
      }
    }

    ExpectInvariant(local.get(), sharded, requests, "post-ingest");

    // Compact only SOME backends: results must not depend on whether a
    // backend's tail has been folded into its indexes.
    ASSERT_TRUE(sharded[1]->Compact().ok());
    ASSERT_TRUE(sharded[3]->Compact().ok());
    for (const auto& service : sharded) {
      if (service.get() == sharded[1].get() ||
          service.get() == sharded[3].get()) {
        EXPECT_EQ(service->unindexed_items(), 0u);
      }
    }
    ExpectInvariant(local.get(), sharded, requests, "post-compact");
  }
}

TEST(ShardedInvarianceTest, SuggestTagsUnionMergeMatchesLocal) {
  const DatasetConfig config = TestConfig(47);
  auto local = BuildLocal(config);
  auto sharded = BuildSharded(config, 4);

  QueryExpansionOptions options;
  options.max_suggestions = 10000;  // no truncation: compare full sets
  options.min_cooccurrence = 2;     // must be applied on GLOBAL support
  for (const UserId user : {UserId{5}, UserId{80}, UserId{200}}) {
    for (const TagId seed : {TagId{0}, TagId{3}}) {
      const TagId seeds[] = {seed};
      const auto expected = local->SuggestTags(user, seeds, options);
      const auto actual = sharded->SuggestTags(user, seeds, options);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ASSERT_EQ(expected.value().size(), actual.value().size())
          << "user " << user << " seed " << seed;
      // Weights are float-summed per shard, so allow rounding noise; the
      // support counts must match exactly.
      for (size_t i = 0; i < expected.value().size(); ++i) {
        const TagSuggestion& want = expected.value()[i];
        // Near-ties may legally reorder under float rounding; find the
        // matching tag instead of insisting on the position.
        bool found = false;
        for (const TagSuggestion& got : actual.value()) {
          if (got.tag != want.tag) continue;
          EXPECT_NEAR(got.weight, want.weight, 1e-4);
          EXPECT_EQ(got.support, want.support);
          found = true;
          break;
        }
        EXPECT_TRUE(found) << "tag " << want.tag << " missing from sharded";
      }
    }
  }
}

}  // namespace
}  // namespace amici
