#include "geo/geo_social.h"

#include "core/exhaustive_scan.h"
#include "geo/geo_point.h"
#include "gtest/gtest.h"
#include "index/index_builder.h"
#include "proximity/hop_decay.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

class GeoSocialTest : public ::testing::Test {
 protected:
  GeoSocialTest() {
    DatasetConfig config = SmallDataset();
    config.num_users = 300;
    config.num_tags = 100;
    config.geo_fraction = 0.8;
    dataset_ = GenerateDataset(config).value();
    indexes_ = BuildIndexes(dataset_.store, dataset_.graph.num_users())
                   .value();
    grid_ = GridIndex::Build(dataset_.store, 0.05);
  }

  QueryContext MakeGeoContext(const SocialQuery& query,
                              const ProximityVector& proximity) {
    QueryContext ctx;
    ctx.graph = &dataset_.graph;
    ctx.store = &dataset_.store;
    ctx.inverted = &indexes_.inverted;
    ctx.social = &indexes_.social;
    ctx.grid = &grid_;
    ctx.proximity = &proximity;
    ctx.query = &query;
    ctx.index_horizon = static_cast<ItemId>(dataset_.store.num_items());
    const GeoPoint center{query.latitude, query.longitude};
    const ItemStore* store = &dataset_.store;
    const double radius = query.radius_km;
    ctx.filter = [store, center, radius](ItemId item) {
      if (!store->has_geo(item)) return false;
      const GeoPoint p{store->latitude(item), store->longitude(item)};
      return DistanceKm(center, p) <= radius;
    };
    return ctx;
  }

  SocialQuery GeoQuery(double radius_km) {
    SocialQuery query;
    query.user = 5;
    query.tags = {0, 1};
    query.k = 10;
    query.alpha = 0.5;
    query.has_geo_filter = true;
    // Anchor at the first geo item.
    for (ItemId i = 0; i < dataset_.store.num_items(); ++i) {
      if (dataset_.store.has_geo(i)) {
        query.latitude = dataset_.store.latitude(i);
        query.longitude = dataset_.store.longitude(i);
        break;
      }
    }
    query.radius_km = static_cast<float>(radius_km);
    return query;
  }

  Dataset dataset_;
  BuiltIndexes indexes_;
  GridIndex grid_;
};

TEST_F(GeoSocialTest, MatchesFilteredExhaustiveAcrossRadii) {
  const HopDecayProximity model(0.5, 2);
  const ExhaustiveScan oracle;
  for (const double radius : {1.0, 5.0, 25.0, 200.0}) {
    const SocialQuery query = GeoQuery(radius);
    const ProximityVector proximity =
        model.Compute(dataset_.graph, query.user);
    const QueryContext ctx = MakeGeoContext(query, proximity);

    SearchStats stats;
    const auto expected = oracle.Search(ctx, &stats);
    ASSERT_TRUE(expected.ok());

    const GeoGridScan geo;
    const auto actual = geo.Search(ctx, &stats);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(actual.value().size(), expected.value().size())
        << "radius " << radius;
    for (size_t i = 0; i < actual.value().size(); ++i) {
      EXPECT_NEAR(actual.value()[i].score, expected.value()[i].score, 1e-5)
          << "radius " << radius << " rank " << i;
    }
  }
}

TEST_F(GeoSocialTest, SmallRadiusExaminesFewerItems) {
  const HopDecayProximity model(0.5, 2);
  const SocialQuery small_query = GeoQuery(1.0);
  const SocialQuery large_query = GeoQuery(100.0);
  const ProximityVector proximity =
      model.Compute(dataset_.graph, small_query.user);

  const GeoGridScan geo;
  SearchStats small_stats;
  SearchStats large_stats;
  ASSERT_TRUE(
      geo.Search(MakeGeoContext(small_query, proximity), &small_stats).ok());
  ASSERT_TRUE(
      geo.Search(MakeGeoContext(large_query, proximity), &large_stats).ok());
  EXPECT_LT(small_stats.items_considered, large_stats.items_considered);
}

TEST_F(GeoSocialTest, RequiresGeoFilter) {
  const HopDecayProximity model(0.5, 2);
  SocialQuery query;
  query.user = 1;
  query.tags = {0};
  query.k = 5;
  const ProximityVector proximity =
      model.Compute(dataset_.graph, query.user);
  QueryContext ctx;
  ctx.graph = &dataset_.graph;
  ctx.store = &dataset_.store;
  ctx.inverted = &indexes_.inverted;
  ctx.social = &indexes_.social;
  ctx.grid = &grid_;
  ctx.proximity = &proximity;
  ctx.query = &query;
  ctx.index_horizon = static_cast<ItemId>(dataset_.store.num_items());

  const GeoGridScan geo;
  SearchStats stats;
  const auto result = geo.Search(ctx, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(GeoSocialTest, NameIsStable) {
  const GeoGridScan geo;
  EXPECT_EQ(geo.name(), "geo-grid");
}

}  // namespace
}  // namespace amici
