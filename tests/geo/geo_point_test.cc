#include "geo/geo_point.h"

#include <cmath>

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(DistanceTest, ZeroForIdenticalPoints) {
  const GeoPoint p{37.0f, -122.0f};
  EXPECT_DOUBLE_EQ(DistanceKm(p, p), 0.0);
}

TEST(DistanceTest, Symmetric) {
  const GeoPoint a{37.0f, -122.0f};
  const GeoPoint b{38.5f, -120.25f};
  EXPECT_DOUBLE_EQ(DistanceKm(a, b), DistanceKm(b, a));
}

TEST(DistanceTest, OneDegreeLatitudeIsAbout111Km) {
  const GeoPoint a{0.0f, 0.0f};
  const GeoPoint b{1.0f, 0.0f};
  EXPECT_NEAR(DistanceKm(a, b), 111.2, 0.5);
}

TEST(DistanceTest, LongitudeShrinksWithLatitude) {
  const GeoPoint eq_a{0.0f, 0.0f};
  const GeoPoint eq_b{0.0f, 1.0f};
  const GeoPoint north_a{60.0f, 0.0f};
  const GeoPoint north_b{60.0f, 1.0f};
  const double at_equator = DistanceKm(eq_a, eq_b);
  const double at_60 = DistanceKm(north_a, north_b);
  EXPECT_NEAR(at_60 / at_equator, 0.5, 0.02);  // cos(60°) = 0.5
}

TEST(DistanceTest, KnownCityPair) {
  // San Francisco to Los Angeles is roughly 560 km.
  const GeoPoint sf{37.7749f, -122.4194f};
  const GeoPoint la{34.0522f, -118.2437f};
  EXPECT_NEAR(DistanceKm(sf, la), 559.0, 10.0);
}

TEST(DistanceTest, TriangleInequalityHolds) {
  const GeoPoint a{37.0f, -122.0f};
  const GeoPoint b{37.5f, -121.5f};
  const GeoPoint c{38.0f, -122.5f};
  EXPECT_LE(DistanceKm(a, c), DistanceKm(a, b) + DistanceKm(b, c) + 1e-9);
}

TEST(ConversionTest, LatitudeDegreesRoundTrip) {
  const double degrees = KmToLatitudeDegrees(111.2);
  EXPECT_NEAR(degrees, 1.0, 0.01);
}

TEST(ConversionTest, LongitudeDegreesGrowTowardPoles) {
  EXPECT_GT(KmToLongitudeDegrees(100.0, 60.0),
            KmToLongitudeDegrees(100.0, 0.0));
  EXPECT_EQ(KmToLongitudeDegrees(100.0, 90.0), 360.0);  // clamped
}

TEST(ConversionTest, ConversionBoundsRealDistances) {
  // A displacement of KmToLatitudeDegrees(r) north is exactly r km.
  const GeoPoint origin{37.0f, -122.0f};
  const double r = 25.0;
  const GeoPoint north{
      static_cast<float>(37.0 + KmToLatitudeDegrees(r)), -122.0f};
  EXPECT_NEAR(DistanceKm(origin, north), r, 0.2);
}

}  // namespace
}  // namespace amici
