#include "geo/grid_index.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

ItemStore RandomGeoStore(size_t num_items, uint64_t seed,
                         double geo_fraction = 1.0) {
  Rng rng(seed);
  ItemStore store;
  for (size_t i = 0; i < num_items; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(50));
    item.tags = {static_cast<TagId>(rng.UniformIndex(20))};
    item.quality = static_cast<float>(rng.UniformDouble());
    if (rng.Bernoulli(geo_fraction)) {
      item.has_geo = true;
      item.latitude = static_cast<float>(rng.UniformDouble(37.0, 38.0));
      item.longitude = static_cast<float>(rng.UniformDouble(-122.5, -121.5));
    }
    EXPECT_TRUE(store.Add(item).ok());
  }
  return store;
}

std::vector<ItemId> BruteForceRadius(const ItemStore& store,
                                     const GeoPoint& center,
                                     double radius_km) {
  std::vector<ItemId> out;
  for (size_t i = 0; i < store.num_items(); ++i) {
    const ItemId item = static_cast<ItemId>(i);
    if (!store.has_geo(item)) continue;
    const GeoPoint p{store.latitude(item), store.longitude(item)};
    if (DistanceKm(center, p) <= radius_km) out.push_back(item);
  }
  return out;
}

TEST(GridIndexTest, MatchesBruteForceAcrossRadii) {
  const ItemStore store = RandomGeoStore(2000, 1);
  const GridIndex grid = GridIndex::Build(store, 0.05);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const GeoPoint center{
        static_cast<float>(rng.UniformDouble(37.0, 38.0)),
        static_cast<float>(rng.UniformDouble(-122.5, -121.5))};
    const double radius = rng.UniformDouble(0.5, 40.0);
    std::vector<ItemId> expected = BruteForceRadius(store, center, radius);
    std::vector<ItemId> actual = grid.ItemsInRadius(center, radius);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST(GridIndexTest, NoDuplicateResults) {
  const ItemStore store = RandomGeoStore(500, 3);
  const GridIndex grid = GridIndex::Build(store, 0.3);
  const auto items =
      grid.ItemsInRadius({37.5f, -122.0f}, 30.0);
  const std::set<ItemId> unique(items.begin(), items.end());
  EXPECT_EQ(unique.size(), items.size());
}

TEST(GridIndexTest, SkipsItemsWithoutGeo) {
  const ItemStore store = RandomGeoStore(1000, 4, 0.5);
  const GridIndex grid = GridIndex::Build(store, 0.1);
  EXPECT_LT(grid.num_indexed_items(), store.num_items());
  // A radius covering everything returns exactly the geo items.
  const auto items = grid.ItemsInRadius({37.5f, -122.0f}, 10000.0);
  EXPECT_EQ(items.size(), grid.num_indexed_items());
}

TEST(GridIndexTest, ZeroRadiusReturnsNothing) {
  const ItemStore store = RandomGeoStore(100, 5);
  const GridIndex grid = GridIndex::Build(store, 0.1);
  EXPECT_TRUE(grid.ItemsInRadius({37.5f, -122.0f}, 0.0).empty());
}

TEST(GridIndexTest, EmptyStore) {
  const GridIndex grid = GridIndex::Build(ItemStore(), 0.1);
  EXPECT_EQ(grid.num_indexed_items(), 0u);
  EXPECT_TRUE(grid.ItemsInRadius({0.0f, 0.0f}, 100.0).empty());
}

TEST(GridIndexTest, DefaultConstructedIsInert) {
  const GridIndex grid;
  EXPECT_TRUE(grid.ItemsInRadius({0.0f, 0.0f}, 100.0).empty());
}

TEST(GridIndexTest, CellSizeDoesNotChangeResults) {
  const ItemStore store = RandomGeoStore(800, 6);
  const GeoPoint center{37.4f, -122.1f};
  const double radius = 12.0;
  std::vector<ItemId> baseline;
  for (const double cell : {0.01, 0.1, 0.5, 2.0}) {
    const GridIndex grid = GridIndex::Build(store, cell);
    auto items = grid.ItemsInRadius(center, radius);
    std::sort(items.begin(), items.end());
    if (baseline.empty()) {
      baseline = items;
    } else {
      EXPECT_EQ(items, baseline) << "cell " << cell;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(GridIndexTest, MemoryReported) {
  const ItemStore store = RandomGeoStore(500, 7);
  const GridIndex grid = GridIndex::Build(store, 0.1);
  EXPECT_GT(grid.MemoryBytes(), 0u);
  EXPECT_GT(grid.num_cells(), 1u);
}

}  // namespace
}  // namespace amici
