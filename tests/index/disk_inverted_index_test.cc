#include "index/disk_inverted_index.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/file_util.h"
#include "util/rng.h"

namespace amici {
namespace {

ItemStore RandomStore(size_t num_items, size_t num_tags, uint64_t seed) {
  Rng rng(seed);
  ItemStore store;
  for (size_t i = 0; i < num_items; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(64));
    const size_t tag_count = 1 + rng.UniformIndex(4);
    for (size_t t = 0; t < tag_count; ++t) {
      item.tags.push_back(static_cast<TagId>(rng.UniformIndex(num_tags)));
    }
    item.quality = static_cast<float>(rng.UniformDouble());
    EXPECT_TRUE(store.Add(item).ok());
  }
  return store;
}

void ExpectListsEqual(const PostingList& a, const PostingList& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.max_score(), b.max_score());
  auto it_a = a.NewIterator();
  auto it_b = b.NewIterator();
  while (it_a.Valid() && it_b.Valid()) {
    EXPECT_EQ(it_a.Doc(), it_b.Doc());
    EXPECT_EQ(it_a.ImpactBound(), it_b.ImpactBound());
    it_a.Next();
    it_b.Next();
  }
  EXPECT_EQ(it_a.Valid(), it_b.Valid());
}

class DiskInvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string(::testing::TempDir()) + "/disk_index_test.amii";
    store_ = RandomStore(3000, 80, 11);
    auto memory = InvertedIndex::Build(store_);
    ASSERT_TRUE(memory.ok());
    memory_ = std::move(memory).value();
    ASSERT_TRUE(DiskInvertedIndex::Write(memory_, path_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  ItemStore store_;
  InvertedIndex memory_;
};

TEST_F(DiskInvertedIndexTest, RoundTripsEveryTag) {
  auto disk = DiskInvertedIndex::Open(path_, 64);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_EQ(disk.value()->num_tags(), memory_.num_tags());
  for (TagId tag = 0; tag < memory_.num_tags(); ++tag) {
    EXPECT_EQ(disk.value()->DocumentFrequency(tag),
              memory_.DocumentFrequency(tag));
    const auto list = disk.value()->ReadPostings(tag);
    ASSERT_TRUE(list.ok()) << "tag " << tag;
    ExpectListsEqual(memory_.Postings(tag), list.value());
  }
}

TEST_F(DiskInvertedIndexTest, OutOfRangeTagYieldsEmptyList) {
  auto disk = DiskInvertedIndex::Open(path_, 8);
  ASSERT_TRUE(disk.ok());
  const auto list = disk.value()->ReadPostings(9999);
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list.value().empty());
  EXPECT_EQ(disk.value()->DocumentFrequency(9999), 0u);
}

TEST_F(DiskInvertedIndexTest, PoolCachesRepeatedReads) {
  auto disk = DiskInvertedIndex::Open(path_, 256);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk.value()->ReadPostings(3).ok());
  const uint64_t misses_after_first = disk.value()->pool().misses();
  ASSERT_TRUE(disk.value()->ReadPostings(3).ok());
  EXPECT_EQ(disk.value()->pool().misses(), misses_after_first);
  EXPECT_GT(disk.value()->pool().hits(), 0u);
}

TEST_F(DiskInvertedIndexTest, TinyPoolStillCorrect) {
  auto disk = DiskInvertedIndex::Open(path_, 1);
  ASSERT_TRUE(disk.ok());
  for (TagId tag = 0; tag < 20; ++tag) {
    const auto list = disk.value()->ReadPostings(tag);
    ASSERT_TRUE(list.ok());
    ExpectListsEqual(memory_.Postings(tag), list.value());
  }
  EXPECT_LE(disk.value()->pool().size(), 1u);
}

TEST_F(DiskInvertedIndexTest, ConcurrentReadsAgree) {
  auto disk = DiskInvertedIndex::Open(path_, 32);
  ASSERT_TRUE(disk.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        const TagId tag = static_cast<TagId>((t * 13 + i) % 80);
        const auto list = disk.value()->ReadPostings(tag);
        if (!list.ok() ||
            list.value().size() != memory_.DocumentFrequency(tag)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(DiskInvertedIndexTest, CorruptPayloadDetectedAtOpen) {
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[BlockFile::kBlockSize + 100] ^= 0x01;  // inside the payload
  const std::string bad_path =
      std::string(::testing::TempDir()) + "/disk_index_bad.amii";
  ASSERT_TRUE(WriteStringToFile(corrupted, bad_path).ok());
  EXPECT_EQ(DiskInvertedIndex::Open(bad_path, 8).status().code(),
            StatusCode::kCorruption);
  std::remove(bad_path.c_str());
}

TEST_F(DiskInvertedIndexTest, BadMagicDetected) {
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[0] = 'X';
  const std::string bad_path =
      std::string(::testing::TempDir()) + "/disk_index_magic.amii";
  ASSERT_TRUE(WriteStringToFile(corrupted, bad_path).ok());
  EXPECT_EQ(DiskInvertedIndex::Open(bad_path, 8).status().code(),
            StatusCode::kCorruption);
  std::remove(bad_path.c_str());
}

TEST_F(DiskInvertedIndexTest, EmptyIndexRoundTrips) {
  const std::string empty_path =
      std::string(::testing::TempDir()) + "/disk_index_empty.amii";
  const auto empty = InvertedIndex::Build(ItemStore());
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(DiskInvertedIndex::Write(empty.value(), empty_path).ok());
  auto disk = DiskInvertedIndex::Open(empty_path, 2);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk.value()->num_tags(), 0u);
  std::remove(empty_path.c_str());
}

}  // namespace
}  // namespace amici
