#include "index/inverted_index.h"

#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

/// Four items over tags {0,1,2}; qualities chosen to test impact order.
ItemStore MakeStore() {
  ItemStore store;
  auto add = [&store](UserId owner, std::vector<TagId> tags, float quality) {
    Item item;
    item.owner = owner;
    item.tags = std::move(tags);
    item.quality = quality;
    EXPECT_TRUE(store.Add(item).ok());
  };
  add(0, {0, 1}, 0.9f);   // item 0
  add(1, {1}, 0.2f);      // item 1
  add(0, {1, 2}, 0.5f);   // item 2
  add(2, {2}, 0.5f);      // item 3
  return store;
}

TEST(InvertedIndexTest, DocumentFrequencies) {
  const auto index = InvertedIndex::Build(MakeStore());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().DocumentFrequency(0), 1u);
  EXPECT_EQ(index.value().DocumentFrequency(1), 3u);
  EXPECT_EQ(index.value().DocumentFrequency(2), 2u);
  EXPECT_EQ(index.value().DocumentFrequency(99), 0u);
}

TEST(InvertedIndexTest, PostingsAreDocOrdered) {
  const auto index = InvertedIndex::Build(MakeStore());
  ASSERT_TRUE(index.ok());
  std::vector<ItemId> docs;
  for (auto it = index.value().Postings(1).NewIterator(); it.Valid();
       it.Next()) {
    docs.push_back(it.Doc());
  }
  EXPECT_EQ(docs, (std::vector<ItemId>{0, 1, 2}));
}

TEST(InvertedIndexTest, ImpactOrderedSortsByQualityDesc) {
  const auto index = InvertedIndex::Build(MakeStore());
  ASSERT_TRUE(index.ok());
  const auto impact = index.value().ImpactOrdered(1);
  ASSERT_EQ(impact.size(), 3u);
  EXPECT_EQ(impact[0].item, 0u);  // quality 0.9
  EXPECT_EQ(impact[1].item, 2u);  // quality 0.5
  EXPECT_EQ(impact[2].item, 1u);  // quality 0.2
}

TEST(InvertedIndexTest, ImpactTieBreaksByItemId) {
  const auto index = InvertedIndex::Build(MakeStore());
  ASSERT_TRUE(index.ok());
  const auto impact = index.value().ImpactOrdered(2);
  ASSERT_EQ(impact.size(), 2u);
  // Items 2 and 3 both have quality 0.5; smaller id first.
  EXPECT_EQ(impact[0].item, 2u);
  EXPECT_EQ(impact[1].item, 3u);
}

TEST(InvertedIndexTest, OutOfRangeTagYieldsEmpty) {
  const auto index = InvertedIndex::Build(MakeStore());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index.value().Postings(50).empty());
  EXPECT_TRUE(index.value().ImpactOrdered(50).empty());
}

TEST(InvertedIndexTest, ImpactOrderedCanBeDisabled) {
  InvertedIndex::Options options;
  options.build_impact_ordered = false;
  const auto index = InvertedIndex::Build(MakeStore(), options);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index.value().has_impact_ordered());
  EXPECT_TRUE(index.value().ImpactOrdered(1).empty());
  // Doc-ordered side must still work.
  EXPECT_EQ(index.value().DocumentFrequency(1), 3u);
}

TEST(InvertedIndexTest, EmptyStore) {
  const auto index = InvertedIndex::Build(ItemStore());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().num_tags(), 0u);
  EXPECT_TRUE(index.value().Postings(0).empty());
}

TEST(InvertedIndexTest, MemoryAccountsBothRepresentations) {
  InvertedIndex::Options with;
  InvertedIndex::Options without;
  without.build_impact_ordered = false;
  const auto full = InvertedIndex::Build(MakeStore(), with);
  const auto lean = InvertedIndex::Build(MakeStore(), without);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lean.ok());
  EXPECT_GT(full.value().MemoryBytes(), lean.value().MemoryBytes());
}

}  // namespace
}  // namespace amici
