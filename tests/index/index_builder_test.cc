#include "index/index_builder.h"

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

ItemStore RandomStore(size_t num_items, size_t num_users, size_t num_tags,
                      uint64_t seed) {
  Rng rng(seed);
  ItemStore store;
  for (size_t i = 0; i < num_items; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
    const size_t tag_count = 1 + rng.UniformIndex(4);
    for (size_t t = 0; t < tag_count; ++t) {
      item.tags.push_back(static_cast<TagId>(rng.UniformIndex(num_tags)));
    }
    item.quality = static_cast<float>(rng.UniformDouble());
    EXPECT_TRUE(store.Add(item).ok());
  }
  return store;
}

TEST(IndexBuilderTest, BuildsBothIndexes) {
  const ItemStore store = RandomStore(2000, 100, 50, 1);
  const auto built = BuildIndexes(store, 100);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().social.num_users(), 100u);
  EXPECT_EQ(built.value().social.num_entries(), store.num_items());
  // Total postings across tags equals total tag occurrences.
  size_t postings = 0;
  for (TagId t = 0; t < 50; ++t) {
    postings += built.value().inverted.DocumentFrequency(t);
  }
  size_t occurrences = 0;
  for (size_t i = 0; i < store.num_items(); ++i) {
    occurrences += store.tags(static_cast<ItemId>(i)).size();
  }
  EXPECT_EQ(postings, occurrences);
}

TEST(IndexBuilderTest, StatsArePopulated) {
  const ItemStore store = RandomStore(5000, 200, 100, 2);
  const auto built = BuildIndexes(store, 200);
  ASSERT_TRUE(built.ok());
  EXPECT_GE(built.value().stats.inverted_build_ms, 0.0);
  EXPECT_GE(built.value().stats.social_build_ms, 0.0);
  EXPECT_GT(built.value().stats.inverted_bytes, 0u);
  EXPECT_GT(built.value().stats.social_bytes, 0u);
}

TEST(IndexBuilderTest, OptionsPropagateToInvertedIndex) {
  const ItemStore store = RandomStore(1000, 50, 20, 3);
  InvertedIndex::Options options;
  options.build_impact_ordered = false;
  const auto built = BuildIndexes(store, 50, options);
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(built.value().inverted.has_impact_ordered());
}

TEST(IndexBuilderTest, EmptyStoreBuilds) {
  const auto built = BuildIndexes(ItemStore(), 10);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().social.num_entries(), 0u);
  EXPECT_EQ(built.value().inverted.num_tags(), 0u);
}

}  // namespace
}  // namespace amici
