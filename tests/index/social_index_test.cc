#include "index/social_index.h"

#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

ItemStore MakeStore() {
  ItemStore store;
  auto add = [&store](UserId owner, float quality) {
    Item item;
    item.owner = owner;
    item.tags = {0};
    item.quality = quality;
    EXPECT_TRUE(store.Add(item).ok());
  };
  add(0, 0.3f);  // item 0
  add(1, 0.9f);  // item 1
  add(0, 0.8f);  // item 2
  add(1, 0.9f);  // item 3 (tie with 1)
  add(0, 0.1f);  // item 4
  return store;
}

TEST(SocialIndexTest, ItemsGroupedByOwner) {
  const SocialIndex index = SocialIndex::Build(MakeStore(), 3);
  EXPECT_EQ(index.num_users(), 3u);
  EXPECT_EQ(index.ItemsOf(0).size(), 3u);
  EXPECT_EQ(index.ItemsOf(1).size(), 2u);
  EXPECT_EQ(index.ItemsOf(2).size(), 0u);
  EXPECT_EQ(index.num_entries(), 5u);
}

TEST(SocialIndexTest, RowsQualityDescending) {
  const SocialIndex index = SocialIndex::Build(MakeStore(), 3);
  const auto items = index.ItemsOf(0);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].item, 2u);  // 0.8
  EXPECT_EQ(items[1].item, 0u);  // 0.3
  EXPECT_EQ(items[2].item, 4u);  // 0.1
}

TEST(SocialIndexTest, QualityTiesBreakByItemId) {
  const SocialIndex index = SocialIndex::Build(MakeStore(), 3);
  const auto items = index.ItemsOf(1);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].item, 1u);
  EXPECT_EQ(items[1].item, 3u);
}

TEST(SocialIndexTest, BestQuality) {
  const SocialIndex index = SocialIndex::Build(MakeStore(), 3);
  EXPECT_FLOAT_EQ(index.BestQuality(0), 0.8f);
  EXPECT_FLOAT_EQ(index.BestQuality(1), 0.9f);
  EXPECT_FLOAT_EQ(index.BestQuality(2), 0.0f);
}

TEST(SocialIndexTest, OwnersBeyondUserUniverseIgnored) {
  ItemStore store;
  Item item;
  item.owner = 99;
  item.tags = {0};
  item.quality = 0.5f;
  ASSERT_TRUE(store.Add(item).ok());
  const SocialIndex index = SocialIndex::Build(store, 3);
  EXPECT_EQ(index.num_entries(), 0u);
}

TEST(SocialIndexTest, EmptyStore) {
  const SocialIndex index = SocialIndex::Build(ItemStore(), 5);
  EXPECT_EQ(index.num_users(), 5u);
  EXPECT_EQ(index.num_entries(), 0u);
  EXPECT_TRUE(index.ItemsOf(4).empty());
}

}  // namespace
}  // namespace amici
