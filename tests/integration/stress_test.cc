// Randomized lifecycle stress through the SearchService surface:
// interleave item ingest (single + batched), friendship churn,
// compactions, and queries, checking after every mutation batch that the
// early-terminating strategies still agree with the exhaustive oracle.
// This is the closest thing to a model-checking harness the system has.

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

TEST(StressTest, MutationsNeverBreakExactness) {
  DatasetConfig config = SmallDataset();
  config.num_users = 250;
  config.items_per_user = 3.0;
  config.num_tags = 120;
  config.geo_fraction = 0.3;
  Dataset dataset = GenerateDataset(config).value();
  Dataset workload_view = GenerateDataset(config).value();

  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  ASSERT_TRUE(service.ok());

  QueryWorkloadConfig workload;
  workload.num_queries = 8;
  workload.seed = 404;
  const auto queries = GenerateQueries(workload_view, workload).value();

  Rng rng(2024);
  const size_t num_users = service.value()->num_users();
  for (int round = 0; round < 12; ++round) {
    // --- Mutation batch: items (every other round through the batched
    // AddItems path), friendships, sometimes a compaction.
    const size_t new_items = rng.UniformIndex(10);
    std::vector<Item> batch;
    for (size_t i = 0; i < new_items; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
      item.tags = {static_cast<TagId>(rng.UniformIndex(120))};
      if (rng.Bernoulli(0.5)) {
        item.tags.push_back(static_cast<TagId>(rng.UniformIndex(120)));
      }
      item.quality = static_cast<float>(rng.UniformDouble());
      if (round % 2 == 0) {
        ASSERT_TRUE(service.value()->AddItem(item).ok());
      } else {
        batch.push_back(item);
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(service.value()->AddItems(batch).ok());
    }
    const size_t edge_flips = rng.UniformIndex(4);
    for (size_t i = 0; i < edge_flips; ++i) {
      const UserId u = static_cast<UserId>(rng.UniformIndex(num_users));
      const UserId v = static_cast<UserId>(rng.UniformIndex(num_users));
      if (u == v) continue;
      // Flip: add if absent (Ok), remove if present (AlreadyExists).
      const Status added = service.value()->AddFriendship(u, v);
      if (added.code() == StatusCode::kAlreadyExists) {
        ASSERT_TRUE(service.value()->RemoveFriendship(u, v).ok());
      } else {
        ASSERT_TRUE(added.ok()) << added.ToString();
      }
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(service.value()->Compact().ok());
    }

    // --- Invariant: every strategy agrees with the oracle.
    for (const SocialQuery& base_query : queries) {
      SearchRequest request;
      request.query = base_query;
      request.query.alpha = rng.UniformDouble();
      request.algorithm = AlgorithmId::kExhaustive;
      const auto expected = service.value()->Search(request);
      ASSERT_TRUE(expected.ok());
      for (const AlgorithmId id :
           {AlgorithmId::kMergeScan, AlgorithmId::kHybrid,
            AlgorithmId::kNra}) {
        request.algorithm = id;
        const auto actual = service.value()->Search(request);
        ASSERT_TRUE(actual.ok()) << AlgorithmName(id);
        ASSERT_EQ(actual.value().items.size(),
                  expected.value().items.size())
            << AlgorithmName(id) << " round " << round;
        for (size_t i = 0; i < actual.value().items.size(); ++i) {
          EXPECT_NEAR(actual.value().items[i].score,
                      expected.value().items[i].score, 1e-5)
              << AlgorithmName(id) << " round " << round << " rank " << i;
        }
      }
    }
  }
}

TEST(StressTest, SearchBatchMatchesSerialExecution) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  Dataset dataset = GenerateDataset(config).value();
  Dataset workload_view = GenerateDataset(config).value();
  LocalSearchService::Options options;
  options.batch_threads = 8;
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store),
                                           std::move(options));
  ASSERT_TRUE(service.ok());

  QueryWorkloadConfig workload;
  workload.num_queries = 50;
  workload.seed = 505;
  const auto queries = GenerateQueries(workload_view, workload).value();

  std::vector<SearchRequest> requests;
  for (const SocialQuery& query : queries) {
    SearchRequest request;
    request.query = query;
    requests.push_back(request);
  }
  // Serial reference, then the pooled batch.
  std::vector<Result<SearchResponse>> serial;
  for (const SearchRequest& request : requests) {
    serial.push_back(service.value()->Search(request));
  }
  const auto parallel = service.value()->SearchBatch(requests);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok()) << "request " << i;
    ASSERT_EQ(serial[i].value().items.size(),
              parallel[i].value().items.size());
    for (size_t r = 0; r < serial[i].value().items.size(); ++r) {
      EXPECT_EQ(serial[i].value().items[r].item,
                parallel[i].value().items[r].item);
      EXPECT_EQ(serial[i].value().items[r].score,
                parallel[i].value().items[r].score);
    }
  }
}

}  // namespace
}  // namespace amici
