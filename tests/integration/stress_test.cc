// Randomized lifecycle stress: interleave item ingest, friendship churn,
// compactions, and queries, checking after every mutation batch that the
// early-terminating strategies still agree with the exhaustive oracle.
// This is the closest thing to a model-checking harness the engine has.

#include <memory>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

TEST(StressTest, MutationsNeverBreakExactness) {
  DatasetConfig config = SmallDataset();
  config.num_users = 250;
  config.items_per_user = 3.0;
  config.num_tags = 120;
  config.geo_fraction = 0.3;
  Dataset dataset = GenerateDataset(config).value();
  Dataset workload_view = GenerateDataset(config).value();

  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  QueryWorkloadConfig workload;
  workload.num_queries = 8;
  workload.seed = 404;
  const auto queries = GenerateQueries(workload_view, workload).value();

  Rng rng(2024);
  const size_t num_users = engine.value()->graph().num_users();
  for (int round = 0; round < 12; ++round) {
    // --- Mutation batch: items, friendships, sometimes a compaction.
    const size_t new_items = rng.UniformIndex(10);
    for (size_t i = 0; i < new_items; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
      item.tags = {static_cast<TagId>(rng.UniformIndex(120))};
      if (rng.Bernoulli(0.5)) {
        item.tags.push_back(static_cast<TagId>(rng.UniformIndex(120)));
      }
      item.quality = static_cast<float>(rng.UniformDouble());
      ASSERT_TRUE(engine.value()->AddItem(item).ok());
    }
    const size_t edge_flips = rng.UniformIndex(4);
    for (size_t i = 0; i < edge_flips; ++i) {
      const UserId u = static_cast<UserId>(rng.UniformIndex(num_users));
      const UserId v = static_cast<UserId>(rng.UniformIndex(num_users));
      if (u == v) continue;
      if (engine.value()->graph().HasEdge(u, v)) {
        ASSERT_TRUE(engine.value()->RemoveFriendship(u, v).ok());
      } else {
        ASSERT_TRUE(engine.value()->AddFriendship(u, v).ok());
      }
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(engine.value()->Compact().ok());
    }

    // --- Invariant: every strategy agrees with the oracle.
    for (const SocialQuery& base_query : queries) {
      SocialQuery query = base_query;
      query.alpha = rng.UniformDouble();
      const auto expected =
          engine.value()->Query(query, AlgorithmId::kExhaustive);
      ASSERT_TRUE(expected.ok());
      for (const AlgorithmId id :
           {AlgorithmId::kMergeScan, AlgorithmId::kHybrid,
            AlgorithmId::kNra}) {
        const auto actual = engine.value()->Query(query, id);
        ASSERT_TRUE(actual.ok()) << AlgorithmName(id);
        ASSERT_EQ(actual.value().items.size(),
                  expected.value().items.size())
            << AlgorithmName(id) << " round " << round;
        for (size_t i = 0; i < actual.value().items.size(); ++i) {
          EXPECT_NEAR(actual.value().items[i].score,
                      expected.value().items[i].score, 1e-5)
              << AlgorithmName(id) << " round " << round << " rank " << i;
        }
      }
    }
  }
}

TEST(StressTest, QueryBatchMatchesSerialExecution) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  Dataset dataset = GenerateDataset(config).value();
  Dataset workload_view = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  QueryWorkloadConfig workload;
  workload.num_queries = 50;
  workload.seed = 505;
  const auto queries = GenerateQueries(workload_view, workload).value();

  const auto serial =
      engine.value()->QueryBatch(queries, AlgorithmId::kHybrid, nullptr);
  ThreadPool pool(8);
  const auto parallel =
      engine.value()->QueryBatch(queries, AlgorithmId::kHybrid, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok()) << "query " << i;
    ASSERT_EQ(serial[i].value().items.size(),
              parallel[i].value().items.size());
    for (size_t r = 0; r < serial[i].value().items.size(); ++r) {
      EXPECT_EQ(serial[i].value().items[r].item,
                parallel[i].value().items[r].item);
      EXPECT_EQ(serial[i].value().items[r].score,
                parallel[i].value().items[r].score);
    }
  }
}

}  // namespace
}  // namespace amici
