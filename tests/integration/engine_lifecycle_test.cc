// End-to-end lifecycle through the SearchService surface: generate ->
// persist graph -> rebuild service -> query -> incremental ingest (single
// and batched) -> compact -> query again.

#include <cstdio>
#include <string>

#include "graph/graph_io.h"
#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

TEST(EngineLifecycleTest, PersistRebuildQueryIngestCompact) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.num_tags = 150;
  Dataset dataset = GenerateDataset(config).value();

  // Persist and reload the graph through the binary format.
  const std::string path =
      std::string(::testing::TempDir()) + "/lifecycle.amig";
  ASSERT_TRUE(SaveGraph(dataset.graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  auto service = LocalSearchService::Build(std::move(loaded).value(),
                                           std::move(dataset.store));
  ASSERT_TRUE(service.ok());

  // Baseline query.
  Dataset dataset2 = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 10;
  workload.seed = 5;
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok());

  for (const SocialQuery& query : queries.value()) {
    SearchRequest request;
    request.query = query;
    ASSERT_TRUE(service.value()->Search(request).ok());
  }

  // Ingest a burst of items into the tail: half one-by-one, half as one
  // AddItems batch (single publish).
  const size_t before = service.value()->num_items();
  std::vector<Item> batch;
  for (int i = 0; i < 50; ++i) {
    Item item;
    item.owner = static_cast<UserId>(i % service.value()->num_users());
    item.tags = {static_cast<TagId>(i % 20)};
    item.quality = 0.5f;
    if (i < 25) {
      ASSERT_TRUE(service.value()->AddItem(item).ok());
    } else {
      batch.push_back(item);
    }
  }
  ASSERT_TRUE(service.value()->AddItems(batch).ok());
  EXPECT_EQ(service.value()->unindexed_items(), 50u);
  EXPECT_EQ(service.value()->num_items(), before + 50);

  // Tail items participate in queries before compaction; results across
  // compaction must be identical.
  std::vector<std::vector<ScoredItem>> pre_compaction;
  for (const SocialQuery& query : queries.value()) {
    SearchRequest request;
    request.query = query;
    const auto response = service.value()->Search(request);
    ASSERT_TRUE(response.ok());
    pre_compaction.push_back(response.value().items);
  }
  ASSERT_TRUE(service.value()->Compact().ok());
  EXPECT_EQ(service.value()->unindexed_items(), 0u);
  for (size_t q = 0; q < queries.value().size(); ++q) {
    SearchRequest request;
    request.query = queries.value()[q];
    const auto response = service.value()->Search(request);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.value().items.size(), pre_compaction[q].size());
    for (size_t i = 0; i < pre_compaction[q].size(); ++i) {
      EXPECT_NEAR(response.value().items[i].score,
                  pre_compaction[q][i].score, 1e-5)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(EngineLifecycleTest, EmptyTailCompactionIsIdempotent) {
  DatasetConfig config = SmallDataset();
  config.num_users = 100;
  Dataset dataset = GenerateDataset(config).value();
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service.value()->Compact().ok());
  ASSERT_TRUE(service.value()->Compact().ok());
  EXPECT_EQ(service.value()->unindexed_items(), 0u);
}

TEST(EngineLifecycleTest, ManyIngestCompactCycles) {
  DatasetConfig config = SmallDataset();
  config.num_users = 100;
  config.items_per_user = 2.0;
  Dataset dataset = GenerateDataset(config).value();
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  ASSERT_TRUE(service.ok());

  SearchRequest request;
  request.query.user = 1;
  request.query.tags = {0};
  request.query.k = 5;
  request.query.alpha = 0.4;

  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      Item item;
      item.owner = static_cast<UserId>((cycle * 10 + i) % 100);
      item.tags = {static_cast<TagId>(i % 5)};
      item.quality = 0.3f;
      ASSERT_TRUE(service.value()->AddItem(item).ok());
    }
    request.algorithm = AlgorithmId::kExhaustive;
    const auto exhaustive = service.value()->Search(request);
    request.algorithm = AlgorithmId::kHybrid;
    const auto hybrid = service.value()->Search(request);
    ASSERT_TRUE(exhaustive.ok());
    ASSERT_TRUE(hybrid.ok());
    ASSERT_EQ(exhaustive.value().items.size(), hybrid.value().items.size());
    for (size_t i = 0; i < hybrid.value().items.size(); ++i) {
      EXPECT_NEAR(hybrid.value().items[i].score,
                  exhaustive.value().items[i].score, 1e-5);
    }
    ASSERT_TRUE(service.value()->Compact().ok());
  }
  EXPECT_EQ(service.value()->num_items(),
            static_cast<size_t>(100 * 2 + 50));
}

}  // namespace
}  // namespace amici
