// End-to-end lifecycle: generate -> persist graph -> rebuild engine ->
// query -> incremental ingest -> compact -> query again.

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "graph/graph_io.h"
#include "gtest/gtest.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

TEST(EngineLifecycleTest, PersistRebuildQueryIngestCompact) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.num_tags = 150;
  Dataset dataset = GenerateDataset(config).value();

  // Persist and reload the graph through the binary format.
  const std::string path =
      std::string(::testing::TempDir()) + "/lifecycle.amig";
  ASSERT_TRUE(SaveGraph(dataset.graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  auto engine = SocialSearchEngine::Build(
      std::move(loaded).value(), std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  // Baseline query.
  Dataset dataset2 = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 10;
  workload.seed = 5;
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok());

  for (const SocialQuery& query : queries.value()) {
    ASSERT_TRUE(engine.value()->Query(query).ok());
  }

  // Ingest a burst of items into the tail.
  const size_t before = engine.value()->store().num_items();
  for (int i = 0; i < 50; ++i) {
    Item item;
    item.owner = static_cast<UserId>(i % engine.value()->graph().num_users());
    item.tags = {static_cast<TagId>(i % 20)};
    item.quality = 0.5f;
    ASSERT_TRUE(engine.value()->AddItem(item).ok());
  }
  EXPECT_EQ(engine.value()->unindexed_items(), 50u);
  EXPECT_EQ(engine.value()->store().num_items(), before + 50);

  // Tail items participate in queries before compaction; results across
  // compaction must be identical.
  std::vector<std::vector<ScoredItem>> pre_compaction;
  for (const SocialQuery& query : queries.value()) {
    const auto result = engine.value()->Query(query);
    ASSERT_TRUE(result.ok());
    pre_compaction.push_back(result.value().items);
  }
  ASSERT_TRUE(engine.value()->Compact().ok());
  EXPECT_EQ(engine.value()->unindexed_items(), 0u);
  for (size_t q = 0; q < queries.value().size(); ++q) {
    const auto result = engine.value()->Query(queries.value()[q]);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().items.size(), pre_compaction[q].size());
    for (size_t i = 0; i < pre_compaction[q].size(); ++i) {
      EXPECT_NEAR(result.value().items[i].score,
                  pre_compaction[q][i].score, 1e-5)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(EngineLifecycleTest, EmptyTailCompactionIsIdempotent) {
  DatasetConfig config = SmallDataset();
  config.num_users = 100;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->Compact().ok());
  ASSERT_TRUE(engine.value()->Compact().ok());
  EXPECT_EQ(engine.value()->unindexed_items(), 0u);
}

TEST(EngineLifecycleTest, ManyIngestCompactCycles) {
  DatasetConfig config = SmallDataset();
  config.num_users = 100;
  config.items_per_user = 2.0;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  SocialQuery query;
  query.user = 1;
  query.tags = {0};
  query.k = 5;
  query.alpha = 0.4;

  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      Item item;
      item.owner = static_cast<UserId>((cycle * 10 + i) % 100);
      item.tags = {static_cast<TagId>(i % 5)};
      item.quality = 0.3f;
      ASSERT_TRUE(engine.value()->AddItem(item).ok());
    }
    const auto exhaustive =
        engine.value()->Query(query, AlgorithmId::kExhaustive);
    const auto hybrid = engine.value()->Query(query, AlgorithmId::kHybrid);
    ASSERT_TRUE(exhaustive.ok());
    ASSERT_TRUE(hybrid.ok());
    ASSERT_EQ(exhaustive.value().items.size(), hybrid.value().items.size());
    for (size_t i = 0; i < hybrid.value().items.size(); ++i) {
      EXPECT_NEAR(hybrid.value().items[i].score,
                  exhaustive.value().items[i].score, 1e-5);
    }
    ASSERT_TRUE(engine.value()->Compact().ok());
  }
  EXPECT_EQ(engine.value()->store().num_items(),
            static_cast<size_t>(100 * 2 + 50));
}

}  // namespace
}  // namespace amici
