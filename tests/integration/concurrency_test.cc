// Concurrency through the engine facade, in two regimes:
//
//  * read-only: concurrent queries must match single-threaded execution
//    (the proximity cache and stats are the shared mutable state);
//  * read/write: a writer thread ingesting (AddItem) and compacting while
//    reader threads run Query/QueryBatch — the snapshot design must keep
//    every query exact against the catalogue prefix it pinned, verified
//    post-hoc by an exhaustive scan over the final store.
//
// Run under -fsanitize=thread (cmake -DAMICI_SANITIZE=thread, or
// tools/run_tier1.sh --tsan) to check the publication protocol itself.

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/scorer.h"
#include "gtest/gtest.h"
#include "topk/topk_heap.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

/// Post-hoc exhaustive reference: scores every item visible in the
/// engine's CURRENT snapshot with the shared Scorer and returns the exact
/// top-k. Independent of the indexes and of the algorithm under test.
std::vector<ScoredItem> ExhaustiveReference(SocialSearchEngine* engine,
                                            const SocialQuery& query) {
  const auto snap = engine->snapshot();
  const auto proximity = engine->proximity().GetProximity(
      *snap->graph, query.user, snap->graph_version);
  Scorer scorer(snap->store, proximity.get(), &query);
  TopKHeap heap(query.k);
  for (ItemId item = 0;
       item < static_cast<ItemId>(snap->store.num_items()); ++item) {
    if (!scorer.Eligible(item)) continue;
    const double score = scorer.Score(item);
    if (score > 0.0) heap.Push(item, score);
  }
  return heap.TakeSorted();
}

TEST(ConcurrencyTest, ParallelQueriesMatchSerialResults) {
  DatasetConfig config = SmallDataset();
  config.num_users = 500;
  config.num_tags = 200;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  Dataset dataset2 = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 64;
  workload.seed = 17;
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok());

  // Serial reference.
  std::vector<std::vector<ScoredItem>> expected;
  for (const SocialQuery& query : queries.value()) {
    const auto result = engine.value()->Query(query);
    ASSERT_TRUE(result.ok());
    expected.push_back(result.value().items);
  }

  // Parallel execution of the same workload, several times over.
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  const int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = static_cast<size_t>(t); q < queries.value().size();
           q += kThreads) {
        for (int repeat = 0; repeat < 3; ++repeat) {
          const auto result = engine.value()->Query(queries.value()[q]);
          if (!result.ok()) {
            errors.fetch_add(1);
            continue;
          }
          if (result.value().items.size() != expected[q].size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < expected[q].size(); ++i) {
            if (std::abs(result.value().items[i].score -
                         expected[q][i].score) > 1e-5f) {
              mismatches.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(engine.value()->proximity().stats().cache_hits, 0u);
}

TEST(ConcurrencyTest, MixedAlgorithmsInParallel) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  const AlgorithmId ids[] = {AlgorithmId::kExhaustive,
                             AlgorithmId::kMergeScan,
                             AlgorithmId::kContentFirst,
                             AlgorithmId::kSocialFirst, AlgorithmId::kHybrid};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 5; ++t) {
    threads.emplace_back([&, t] {
      SocialQuery query;
      query.tags = {0, 1};
      query.k = 10;
      query.alpha = 0.5;
      for (int i = 0; i < 50; ++i) {
        query.user = static_cast<UserId>((t * 50 + i) % 300);
        if (!engine.value()->Query(query, ids[t]).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(engine.value()->stats().total_queries(), 250u);
}

// The tentpole contract: AddItem and Compact no longer require external
// exclusion. A writer ingests and periodically compacts while readers
// hammer Query and QueryBatch; mid-run results must be well-formed, and
// once the writer finishes, engine results must match an exhaustive scan
// of the final catalogue exactly.
TEST(ConcurrencyTest, WriterIngestsAndCompactsWhileReadersQuery) {
  DatasetConfig config = SmallDataset();
  config.num_users = 400;
  config.num_tags = 150;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  Dataset dataset2 = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 24;
  workload.seed = 99;
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok());

  constexpr size_t kIngested = 3000;
  constexpr size_t kCompactEvery = 750;
  const size_t initial_items = engine.value()->store().num_items();
  std::atomic<bool> writer_done{false};
  std::atomic<int> errors{0};
  std::atomic<int> malformed{0};

  std::thread writer([&] {
    Rng rng(42);
    for (size_t i = 0; i < kIngested; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(400));
      item.tags = {static_cast<TagId>(rng.UniformIndex(150))};
      item.quality = static_cast<float>(rng.UniformDouble());
      if (!engine.value()->AddItem(item).ok()) errors.fetch_add(1);
      if ((i + 1) % kCompactEvery == 0) {
        if (!engine.value()->Compact().ok()) errors.fetch_add(1);
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  const int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ThreadPool pool(2);
      const AlgorithmId algorithm =
          (t % 2 == 0) ? AlgorithmId::kHybrid : AlgorithmId::kExhaustive;
      while (!writer_done.load(std::memory_order_acquire)) {
        if (t == 0) {
          // One reader exercises the batch path.
          const auto batch = engine.value()->QueryBatch(
              queries.value(), algorithm, &pool);
          for (const auto& result : batch) {
            if (!result.ok()) errors.fetch_add(1);
          }
          continue;
        }
        for (const SocialQuery& query : queries.value()) {
          const auto result = engine.value()->Query(query, algorithm);
          if (!result.ok()) {
            errors.fetch_add(1);
            continue;
          }
          // Mid-run invariants: bounded size, score-descending, and every
          // id refers to an item that exists by now.
          const auto& items = result.value().items;
          if (items.size() > query.k) malformed.fetch_add(1);
          for (size_t i = 0; i + 1 < items.size(); ++i) {
            if (items[i].score < items[i + 1].score) malformed.fetch_add(1);
          }
          const size_t store_size = engine.value()->store().num_items();
          for (const ScoredItem& item : items) {
            if (item.item >= store_size) malformed.fetch_add(1);
          }
        }
      }
    });
  }

  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(malformed.load(), 0);

  // Quiesced: every algorithm must now agree bit-for-bit with a post-hoc
  // exhaustive scan over the final catalogue (indexed part + tail).
  for (const SocialQuery& query : queries.value()) {
    const auto expected = ExhaustiveReference(engine.value().get(), query);
    for (const AlgorithmId algorithm :
         {AlgorithmId::kHybrid, AlgorithmId::kExhaustive,
          AlgorithmId::kMergeScan}) {
      const auto result = engine.value()->Query(query, algorithm);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result.value().items.size(), expected.size())
          << AlgorithmName(algorithm);
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(result.value().items[i].score, expected[i].score, 1e-9)
            << AlgorithmName(algorithm) << " rank " << i;
      }
    }
  }

  // Everything the writer ingested is queryable; one more Compact folds
  // the remaining tail away.
  EXPECT_EQ(engine.value()->store().num_items(), initial_items + kIngested);
  ASSERT_TRUE(engine.value()->Compact().ok());
  EXPECT_EQ(engine.value()->unindexed_items(), 0u);
}

// Incremental compaction under fire: a background compactor ALTERNATES
// the merge and rebuild paths while a writer ingests and readers query.
// Merged snapshots structurally share posting lists with their
// predecessors, so this is exactly the aliasing pattern that could hide
// a publication race — run it under TSan (tools/run_tier1.sh --tsan).
// Post-hoc, results must match an exhaustive scan of the final
// catalogue, and both modes must actually have run.
TEST(ConcurrencyTest, AlternatingMergeAndRebuildCompactionUnderLoad) {
  DatasetConfig config = SmallDataset();
  config.num_users = 400;
  config.num_tags = 150;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  Dataset dataset2 = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 16;
  workload.seed = 77;
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok());

  // The compactor drives the run: it performs a fixed alternation of
  // merge and rebuild compactions while the writer keeps a tail growing
  // under it, so BOTH paths are guaranteed to execute concurrently with
  // ingest and queries (a free-running writer can outpace the first
  // Compact entirely on a fast machine).
  constexpr int kCompactions = 6;
  std::atomic<bool> done{false};
  std::atomic<int> errors{0};

  std::thread writer([&] {
    Rng rng(31);
    while (!done.load(std::memory_order_acquire)) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(400));
      item.tags = {static_cast<TagId>(rng.UniformIndex(150))};
      item.quality = static_cast<float>(rng.UniformDouble());
      if (!engine.value()->AddItem(item).ok()) errors.fetch_add(1);
    }
  });

  // The background compactor: merge, rebuild, merge, rebuild, ...
  std::thread compactor([&] {
    for (int round = 0; round < kCompactions; ++round) {
      const CompactionMode mode = (round % 2 == 0)
                                      ? CompactionMode::kAlwaysMerge
                                      : CompactionMode::kAlwaysRebuild;
      CompactionOutcome outcome;
      if (!engine.value()->Compact(mode, &outcome).ok()) errors.fetch_add(1);
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  const int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      const AlgorithmId algorithm =
          (t % 2 == 0) ? AlgorithmId::kHybrid : AlgorithmId::kMergeScan;
      while (!done.load(std::memory_order_acquire)) {
        for (const SocialQuery& query : queries.value()) {
          const auto result = engine.value()->Query(query, algorithm);
          if (!result.ok()) errors.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  compactor.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(errors.load(), 0);
  // Both paths really ran (the compactor alternated every round and the
  // writer kept it busy for thousands of items).
  EXPECT_GT(engine.value()->stats().merge_compactions(), 0u);
  EXPECT_GT(engine.value()->stats().rebuild_compactions(), 0u);

  // Quiesced: exact against a post-hoc exhaustive scan, then one final
  // forced MERGE folds the remaining tail and coverage is total.
  for (const SocialQuery& query : queries.value()) {
    const auto expected = ExhaustiveReference(engine.value().get(), query);
    const auto result = engine.value()->Query(query, AlgorithmId::kHybrid);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().items.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(result.value().items[i].score, expected[i].score, 1e-9)
          << " rank " << i;
    }
  }
  CompactionOutcome final_outcome;
  ASSERT_TRUE(engine.value()
                  ->Compact(CompactionMode::kAlwaysMerge, &final_outcome)
                  .ok());
  EXPECT_TRUE(final_outcome.merged);
  EXPECT_EQ(engine.value()->unindexed_items(), 0u);
}

// Compaction off the hot path: a long-running Compact must not block
// ingest, and a snapshot pinned before the compaction keeps serving its
// own generation while new queries see the compacted one.
TEST(ConcurrencyTest, CompactDoesNotBlockIngestAndPinsGenerations) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(300));
    item.tags = {static_cast<TagId>(rng.UniformIndex(100))};
    item.quality = static_cast<float>(rng.UniformDouble());
    ASSERT_TRUE(engine.value()->AddItem(item).ok());
  }

  const auto pinned = engine.value()->snapshot();
  const size_t pinned_items = pinned->store.num_items();
  const ItemId pinned_horizon = pinned->index_horizon;
  EXPECT_GT(pinned_items, static_cast<size_t>(pinned_horizon));

  std::atomic<bool> compacting{true};
  std::thread compactor([&] {
    EXPECT_TRUE(engine.value()->Compact().ok());
    compacting.store(false, std::memory_order_release);
  });

  // Ingest concurrently with the compaction build.
  int added_during_compact = 0;
  while (compacting.load(std::memory_order_acquire) &&
         added_during_compact < 200) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(300));
    item.tags = {static_cast<TagId>(rng.UniformIndex(100))};
    item.quality = static_cast<float>(rng.UniformDouble());
    ASSERT_TRUE(engine.value()->AddItem(item).ok());
    ++added_during_compact;
  }
  compactor.join();

  // The pinned generation is untouched by the publish.
  EXPECT_EQ(pinned->store.num_items(), pinned_items);
  EXPECT_EQ(pinned->index_horizon, pinned_horizon);

  // The new generation's indexes cover at least everything the compaction
  // saw; anything ingested during the build stays in the tail.
  const auto fresh = engine.value()->snapshot();
  EXPECT_GE(fresh->index_horizon, static_cast<ItemId>(pinned_items));
  EXPECT_EQ(fresh->store.num_items(),
            pinned_items + static_cast<size_t>(added_during_compact));
  EXPECT_EQ(fresh->unindexed_items(),
            fresh->store.num_items() -
                static_cast<size_t>(fresh->index_horizon));
}

}  // namespace
}  // namespace amici
