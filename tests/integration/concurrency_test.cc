// Concurrent read-only querying through the engine facade: results must be
// identical to single-threaded execution and nothing may crash or race
// (the proximity cache and stats are the shared mutable state).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

TEST(ConcurrencyTest, ParallelQueriesMatchSerialResults) {
  DatasetConfig config = SmallDataset();
  config.num_users = 500;
  config.num_tags = 200;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  Dataset dataset2 = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 64;
  workload.seed = 17;
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok());

  // Serial reference.
  std::vector<std::vector<ScoredItem>> expected;
  for (const SocialQuery& query : queries.value()) {
    const auto result = engine.value()->Query(query);
    ASSERT_TRUE(result.ok());
    expected.push_back(result.value().items);
  }

  // Parallel execution of the same workload, several times over.
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  const int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = static_cast<size_t>(t); q < queries.value().size();
           q += kThreads) {
        for (int repeat = 0; repeat < 3; ++repeat) {
          const auto result = engine.value()->Query(queries.value()[q]);
          if (!result.ok()) {
            errors.fetch_add(1);
            continue;
          }
          if (result.value().items.size() != expected[q].size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < expected[q].size(); ++i) {
            if (std::abs(result.value().items[i].score -
                         expected[q][i].score) > 1e-5f) {
              mismatches.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(engine.value()->proximity_cache().hits(), 0u);
}

TEST(ConcurrencyTest, MixedAlgorithmsInParallel) {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store), {});
  ASSERT_TRUE(engine.ok());

  const AlgorithmId ids[] = {AlgorithmId::kExhaustive,
                             AlgorithmId::kMergeScan,
                             AlgorithmId::kContentFirst,
                             AlgorithmId::kSocialFirst, AlgorithmId::kHybrid};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 5; ++t) {
    threads.emplace_back([&, t] {
      SocialQuery query;
      query.tags = {0, 1};
      query.k = 10;
      query.alpha = 0.5;
      for (int i = 0; i < 50; ++i) {
        query.user = static_cast<UserId>((t * 50 + i) % 300);
        if (!engine.value()->Query(query, ids[t]).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(engine.value()->stats().total_queries(), 250u);
}

}  // namespace
}  // namespace amici
