// The central correctness property of the whole system: every
// early-terminating algorithm returns exactly the same top-k score
// profile as the exhaustive oracle, for every proximity model, blend
// parameter, match mode, and graph topology — exercised through the
// SearchService surface (the algorithm under test is the request's
// execution hint).

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "proximity/common_neighbors.h"
#include "proximity/hop_decay.h"
#include "proximity/katz.h"
#include "proximity/ppr_forward_push.h"
#include "proximity/ppr_monte_carlo.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

struct ExactnessParam {
  GraphKind graph_kind;
  double alpha;
  MatchMode mode;
  int proximity_kind;  // 0 hop-decay, 1 common-neighbors, 2 katz,
                       // 3 ppr-push, 4 ppr-mc
  uint64_t seed;
  bool with_geo = false;  // attach a radius filter to every query
  size_t k = 8;
};

std::string ParamName(const ::testing::TestParamInfo<ExactnessParam>& info) {
  const auto& p = info.param;
  std::string name;
  switch (p.graph_kind) {
    case GraphKind::kErdosRenyi: name = "er"; break;
    case GraphKind::kBarabasiAlbert: name = "ba"; break;
    case GraphKind::kWattsStrogatz: name = "ws"; break;
    case GraphKind::kPlantedPartition: name = "pp"; break;
  }
  name += "_a" + std::to_string(static_cast<int>(p.alpha * 100));
  name += p.mode == MatchMode::kAny ? "_any" : "_all";
  name += "_m" + std::to_string(p.proximity_kind);
  if (p.with_geo) name += "_geo";
  name += "_k" + std::to_string(p.k);
  return name;
}

std::shared_ptr<const ProximityModel> MakeModel(int kind) {
  switch (kind) {
    case 0:
      return std::make_shared<HopDecayProximity>(0.5, 2);
    case 1:
      return std::make_shared<CommonNeighborsProximity>();
    case 2:
      return std::make_shared<KatzProximity>(0.05, 3);
    case 3:
      return std::make_shared<PprForwardPush>(0.15, 1e-5);
    default:
      return std::make_shared<PprMonteCarlo>(0.15, 1024, 7);
  }
}

class ExactnessTest : public ::testing::TestWithParam<ExactnessParam> {};

TEST_P(ExactnessTest, AllAlgorithmsMatchOracle) {
  const ExactnessParam param = GetParam();

  DatasetConfig config = SmallDataset();
  config.num_users = 400;
  config.items_per_user = 4.0;
  config.num_tags = 250;
  config.graph_kind = param.graph_kind;
  config.geo_fraction = 0.3;
  config.seed = param.seed;
  Dataset dataset = GenerateDataset(config).value();

  LocalSearchService::Options options;
  options.engine.proximity_model = MakeModel(param.proximity_kind);
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store),
                                           std::move(options));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  QueryWorkloadConfig workload;
  workload.num_queries = 15;
  workload.alpha = param.alpha;
  workload.mode = param.mode;
  workload.k = param.k;
  workload.with_geo_filter = param.with_geo;
  workload.radius_km = 20.0;
  workload.seed = param.seed * 31 + 1;
  // The engine consumed the dataset; regenerate an identical copy (the
  // generator is deterministic) for workload synthesis.
  Dataset dataset2 = GenerateDataset(config).value();
  const auto queries = GenerateQueries(dataset2, workload);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  std::vector<AlgorithmId> candidates{
      AlgorithmId::kMergeScan, AlgorithmId::kContentFirst,
      AlgorithmId::kSocialFirst, AlgorithmId::kHybrid, AlgorithmId::kNra};
  if (param.with_geo) candidates.push_back(AlgorithmId::kGeoGrid);

  for (const SocialQuery& query : queries.value()) {
    SearchRequest request;
    request.query = query;
    request.algorithm = AlgorithmId::kExhaustive;
    const auto expected = service.value()->Search(request);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (const AlgorithmId id : candidates) {
      request.algorithm = id;
      const auto actual = service.value()->Search(request);
      ASSERT_TRUE(actual.ok()) << AlgorithmName(id);
      EXPECT_EQ(actual.value().algorithm, AlgorithmName(id));
      ASSERT_EQ(actual.value().items.size(), expected.value().items.size())
          << AlgorithmName(id);
      for (size_t i = 0; i < actual.value().items.size(); ++i) {
        EXPECT_NEAR(actual.value().items[i].score,
                    expected.value().items[i].score, 1e-5)
            << AlgorithmName(id) << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactnessTest,
    ::testing::Values(
        ExactnessParam{GraphKind::kBarabasiAlbert, 0.0, MatchMode::kAny, 3, 1},
        ExactnessParam{GraphKind::kBarabasiAlbert, 0.5, MatchMode::kAny, 3, 2},
        ExactnessParam{GraphKind::kBarabasiAlbert, 1.0, MatchMode::kAny, 3, 3},
        ExactnessParam{GraphKind::kErdosRenyi, 0.3, MatchMode::kAny, 0, 4},
        ExactnessParam{GraphKind::kErdosRenyi, 0.7, MatchMode::kAll, 0, 5},
        ExactnessParam{GraphKind::kWattsStrogatz, 0.5, MatchMode::kAny, 1, 6},
        ExactnessParam{GraphKind::kWattsStrogatz, 0.9, MatchMode::kAll, 2, 7},
        ExactnessParam{GraphKind::kPlantedPartition, 0.5, MatchMode::kAny, 4,
                       8},
        ExactnessParam{GraphKind::kPlantedPartition, 0.2, MatchMode::kAll, 3,
                       9},
        ExactnessParam{GraphKind::kBarabasiAlbert, 0.5, MatchMode::kAll, 4,
                       10},
        // Geo-filtered sweeps (every strategy incl. geo-grid).
        ExactnessParam{GraphKind::kBarabasiAlbert, 0.4, MatchMode::kAny, 3,
                       11, /*with_geo=*/true},
        ExactnessParam{GraphKind::kWattsStrogatz, 0.8, MatchMode::kAll, 0,
                       12, /*with_geo=*/true},
        // Result-size extremes.
        ExactnessParam{GraphKind::kBarabasiAlbert, 0.6, MatchMode::kAny, 3,
                       13, /*with_geo=*/false, /*k=*/1},
        ExactnessParam{GraphKind::kErdosRenyi, 0.5, MatchMode::kAny, 0, 14,
                       /*with_geo=*/false, /*k=*/200}),
    ParamName);

}  // namespace
}  // namespace amici
