#include "storage/tag_dictionary.h"

#include "gtest/gtest.h"

namespace amici {
namespace {

TEST(TagDictionaryTest, InternAssignsDenseIds) {
  TagDictionary dict;
  EXPECT_EQ(dict.Intern("sunset"), 0u);
  EXPECT_EQ(dict.Intern("beach"), 1u);
  EXPECT_EQ(dict.Intern("sunset"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TagDictionaryTest, LookupWithoutInterning) {
  TagDictionary dict;
  dict.Intern("a");
  EXPECT_EQ(dict.Lookup("a"), 0u);
  EXPECT_EQ(dict.Lookup("missing"), kInvalidTagId);
  EXPECT_EQ(dict.size(), 1u);  // Lookup must not intern
}

TEST(TagDictionaryTest, NameRoundTrip) {
  TagDictionary dict;
  const TagId a = dict.Intern("alpha");
  const TagId b = dict.Intern("beta");
  EXPECT_EQ(dict.Name(a), "alpha");
  EXPECT_EQ(dict.Name(b), "beta");
}

TEST(TagDictionaryTest, EmptyStringIsAValidTag) {
  TagDictionary dict;
  const TagId id = dict.Intern("");
  EXPECT_EQ(dict.Lookup(""), id);
  EXPECT_EQ(dict.Name(id), "");
}

TEST(TagDictionaryTest, ManyTagsKeepIdentity) {
  TagDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(dict.Intern("tag" + std::to_string(i)),
              static_cast<TagId>(i));
  }
  EXPECT_EQ(dict.size(), 10000u);
  EXPECT_EQ(dict.Lookup("tag7777"), 7777u);
  EXPECT_EQ(dict.Name(7777), "tag7777");
}

TEST(TagDictionaryTest, MemoryGrowsWithContent) {
  TagDictionary small;
  small.Intern("x");
  TagDictionary big;
  for (int i = 0; i < 1000; ++i) big.Intern("tag" + std::to_string(i));
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(TagDictionaryDeathTest, NameOfUnknownIdAborts) {
  TagDictionary dict;
  dict.Intern("only");
  EXPECT_DEATH(dict.Name(5), "unknown tag");
}

}  // namespace
}  // namespace amici
