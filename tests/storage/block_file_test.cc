#include "storage/block_file.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/file_util.h"

namespace amici {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void FillBlock(char* block, char value) {
  std::memset(block, value, BlockFile::kBlockSize);
}

TEST(BlockFileTest, AppendThenReadBack) {
  const std::string path = TempPath("block_file_rw.blk");
  {
    auto file = BlockFile::Create(path);
    ASSERT_TRUE(file.ok());
    char block[BlockFile::kBlockSize];
    for (char v : {'a', 'b', 'c'}) {
      FillBlock(block, v);
      const auto id = file.value().AppendBlock(block);
      ASSERT_TRUE(id.ok());
    }
    ASSERT_TRUE(file.value().Sync().ok());
    EXPECT_EQ(file.value().num_blocks(), 3u);
  }
  auto reader = BlockFile::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().num_blocks(), 3u);
  char block[BlockFile::kBlockSize];
  ASSERT_TRUE(reader.value().ReadBlock(1, block).ok());
  EXPECT_EQ(block[0], 'b');
  EXPECT_EQ(block[BlockFile::kBlockSize - 1], 'b');
  std::remove(path.c_str());
}

TEST(BlockFileTest, AppendAssignsSequentialIds) {
  const std::string path = TempPath("block_file_ids.blk");
  auto file = BlockFile::Create(path);
  ASSERT_TRUE(file.ok());
  char block[BlockFile::kBlockSize];
  FillBlock(block, 'x');
  for (uint64_t expected = 0; expected < 5; ++expected) {
    const auto id = file.value().AppendBlock(block);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), expected);
  }
  std::remove(path.c_str());
}

TEST(BlockFileTest, ReadBeyondEndIsOutOfRange) {
  const std::string path = TempPath("block_file_oob.blk");
  {
    auto file = BlockFile::Create(path);
    ASSERT_TRUE(file.ok());
    char block[BlockFile::kBlockSize];
    FillBlock(block, 'x');
    ASSERT_TRUE(file.value().AppendBlock(block).ok());
    ASSERT_TRUE(file.value().Sync().ok());
  }
  auto reader = BlockFile::Open(path);
  ASSERT_TRUE(reader.ok());
  char block[BlockFile::kBlockSize];
  EXPECT_EQ(reader.value().ReadBlock(1, block).code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(BlockFileTest, OpenMissingFileFails) {
  EXPECT_EQ(BlockFile::Open("/nonexistent/file.blk").status().code(),
            StatusCode::kIoError);
}

TEST(BlockFileTest, OpenMisalignedFileIsCorruption) {
  const std::string path = TempPath("block_file_misaligned.blk");
  ASSERT_TRUE(WriteStringToFile("not a whole block", path).ok());
  EXPECT_EQ(BlockFile::Open(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(BlockFileTest, ReadOnlyFileRejectsAppends) {
  const std::string path = TempPath("block_file_ro.blk");
  {
    auto file = BlockFile::Create(path);
    ASSERT_TRUE(file.ok());
    char block[BlockFile::kBlockSize];
    FillBlock(block, 'x');
    ASSERT_TRUE(file.value().AppendBlock(block).ok());
  }
  auto reader = BlockFile::Open(path);
  ASSERT_TRUE(reader.ok());
  char block[BlockFile::kBlockSize];
  FillBlock(block, 'y');
  EXPECT_EQ(reader.value().AppendBlock(block).status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(BlockFileTest, ConcurrentReadersSeeConsistentBlocks) {
  const std::string path = TempPath("block_file_concurrent.blk");
  const int kBlocks = 64;
  {
    auto file = BlockFile::Create(path);
    ASSERT_TRUE(file.ok());
    char block[BlockFile::kBlockSize];
    for (int i = 0; i < kBlocks; ++i) {
      FillBlock(block, static_cast<char>('A' + (i % 26)));
      ASSERT_TRUE(file.value().AppendBlock(block).ok());
    }
    ASSERT_TRUE(file.value().Sync().ok());
  }
  auto reader = BlockFile::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reader, &failures, t] {
      char block[BlockFile::kBlockSize];
      for (int i = 0; i < 200; ++i) {
        const uint64_t id = static_cast<uint64_t>((t * 31 + i) % kBlocks);
        if (!reader.value().ReadBlock(id, block).ok() ||
            block[0] != static_cast<char>('A' + (id % 26)) ||
            block[BlockFile::kBlockSize - 1] != block[0]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amici
