// The mergeable posting-list surface behind incremental (LSM-style)
// compaction:
//
//  * PostingList::MergeFrom — appending a strictly-greater-id tail with
//    re-scoring yields the SAME BITS as a from-scratch Build over the
//    concatenation (asserted on the serialized image), including when a
//    tail posting raises max_score and re-quantizes every block;
//  * InvertedIndex / SocialIndex / GridIndex MergeFrom — only the lists
//    the tail touches are rebuilt; every untouched list is SHARED with
//    the base index, asserted by pointer equality on the handles, and an
//    empty tail shares everything.

#include <memory>
#include <string>
#include <vector>

#include "geo/grid_index.h"
#include "gtest/gtest.h"
#include "index/index_builder.h"
#include "index/inverted_index.h"
#include "index/social_index.h"
#include "storage/item_store.h"
#include "storage/posting_list.h"
#include "util/rng.h"

namespace amici {
namespace {

std::string Image(const PostingList& list) {
  std::string image;
  list.SerializeTo(&image);
  return image;
}

float ScoreOfItemTimesTen(ItemId item) {
  return static_cast<float>(item) * 10.0f;
}

TEST(PostingListMergeTest, MergeMatchesFullBuildBitForBit) {
  PostingList::Options options;
  options.block_size = 4;  // several blocks with a small list
  std::vector<ScoredItem> base_postings;
  for (ItemId id : {2u, 3u, 7u, 11u, 13u, 20u, 21u}) {
    base_postings.push_back({id, ScoreOfItemTimesTen(id)});
  }
  const auto base = PostingList::Build(base_postings, options);
  ASSERT_TRUE(base.ok());

  // The tail's last posting has the highest score of the union, so every
  // existing block's 8-bit impacts re-quantize against the new max —
  // exactly why MergeFrom re-reads true scores instead of reusing the
  // stored bounds.
  std::vector<ScoredItem> tail;
  for (ItemId id : {25u, 26u, 40u}) {
    tail.push_back({id, ScoreOfItemTimesTen(id)});
  }
  const auto merged = base.value().MergeFrom(tail, ScoreOfItemTimesTen);
  ASSERT_TRUE(merged.ok());

  std::vector<ScoredItem> all = base_postings;
  all.insert(all.end(), tail.begin(), tail.end());
  const auto rebuilt = PostingList::Build(all, options);
  ASSERT_TRUE(rebuilt.ok());

  EXPECT_EQ(merged.value().size(), all.size());
  EXPECT_EQ(Image(merged.value()), Image(rebuilt.value()));
}

TEST(PostingListMergeTest, EmptyTailReproducesTheBaseImage) {
  // List-level empty-tail merges still re-encode (the INDEX layer is
  // what short-circuits untouched tags to the shared handle); the
  // re-encoded image must be byte-identical to the original.
  std::vector<ScoredItem> postings{{1, 0.5f}, {4, 0.25f}, {9, 1.0f}};
  const auto base = PostingList::Build(postings);
  ASSERT_TRUE(base.ok());
  const auto merged = base.value().MergeFrom({}, [&](ItemId item) -> float {
    for (const ScoredItem& posting : postings) {
      if (posting.item == item) return posting.score;
    }
    ADD_FAILURE() << "unknown item " << item;
    return 0.0f;
  });
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Image(merged.value()), Image(base.value()));
}

TEST(PostingListMergeTest, MergeIntoEmptyBaseEqualsBuild) {
  const PostingList empty;
  std::vector<ScoredItem> tail{{0, 0.1f}, {5, 0.9f}};
  const auto merged = empty.MergeFrom(tail, ScoreOfItemTimesTen);
  ASSERT_TRUE(merged.ok());
  const auto built = PostingList::Build(tail);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(Image(merged.value()), Image(built.value()));
}

TEST(PostingListMergeTest, RejectsTailIdsNotAboveTheBase) {
  std::vector<ScoredItem> postings{{1, 0.5f}, {9, 1.0f}};
  const auto base = PostingList::Build(postings);
  ASSERT_TRUE(base.ok());
  // Duplicate of the base's last id.
  std::vector<ScoredItem> duplicate{{9, 1.0f}};
  EXPECT_FALSE(base.value().MergeFrom(duplicate, ScoreOfItemTimesTen).ok());
  // Below the base's last id.
  std::vector<ScoredItem> regressing{{4, 0.2f}};
  EXPECT_FALSE(base.value().MergeFrom(regressing, ScoreOfItemTimesTen).ok());
}

TEST(PostingListMergeTest, DecodeDocsRoundTripsTheBuildInput) {
  std::vector<ScoredItem> postings{{3, 0.5f}, {8, 1.0f}, {90, 0.125f}};
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().DecodeDocs(), (std::vector<ItemId>{3, 8, 90}));
  EXPECT_TRUE(PostingList().DecodeDocs().empty());
}

// ---------------------------------------------------------------------
// Index-level merges: structural sharing of untouched lists.
// ---------------------------------------------------------------------

Item MakeItem(UserId owner, std::vector<TagId> tags, float quality) {
  Item item;
  item.owner = owner;
  item.tags = std::move(tags);
  item.quality = quality;
  return item;
}

TEST(InvertedIndexMergeTest, OnlyTailTaggedListsAreRebuilt) {
  ItemStore store;
  ASSERT_TRUE(store.Add(MakeItem(0, {0, 1}, 0.9f)).ok());  // item 0
  ASSERT_TRUE(store.Add(MakeItem(1, {2}, 0.4f)).ok());     // item 1
  ASSERT_TRUE(store.Add(MakeItem(2, {1}, 0.7f)).ok());     // item 2
  const ItemStoreView base_view(&store, 3, store.TagUniverseSize());
  const InvertedIndex::Options options;
  const auto base = InvertedIndex::Build(base_view, options);
  ASSERT_TRUE(base.ok());

  // Tail touches tag 1 and introduces tag 3; tags 0 and 2 are untouched.
  ASSERT_TRUE(store.Add(MakeItem(0, {1, 3}, 0.95f)).ok());  // item 3
  uint64_t lists_touched = 0;
  const auto merged = base.value().MergeFrom(ItemStoreView(store), 3,
                                             options, &lists_touched);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(lists_touched, 2u);  // tags 1 and 3
  EXPECT_EQ(merged.value().num_tags(), store.TagUniverseSize());

  // Untouched tags: pointer-identical shared lists and impact arrays.
  EXPECT_EQ(merged.value().PostingsHandle(0), base.value().PostingsHandle(0));
  EXPECT_EQ(merged.value().PostingsHandle(2), base.value().PostingsHandle(2));
  EXPECT_EQ(merged.value().ImpactOrdered(0).data(),
            base.value().ImpactOrdered(0).data());
  // Touched tag: a NEW list holding the base postings plus the tail.
  EXPECT_NE(merged.value().PostingsHandle(1), base.value().PostingsHandle(1));
  EXPECT_EQ(merged.value().DocumentFrequency(1), 3u);
  EXPECT_EQ(merged.value().DocumentFrequency(3), 1u);

  // Bit-identical to the full rebuild, list by list.
  const auto rebuilt = InvertedIndex::Build(ItemStoreView(store), options);
  ASSERT_TRUE(rebuilt.ok());
  for (TagId tag = 0; tag < merged.value().num_tags(); ++tag) {
    EXPECT_EQ(Image(merged.value().Postings(tag)),
              Image(rebuilt.value().Postings(tag)))
        << "tag " << tag;
    const auto merged_impact = merged.value().ImpactOrdered(tag);
    const auto rebuilt_impact = rebuilt.value().ImpactOrdered(tag);
    ASSERT_EQ(merged_impact.size(), rebuilt_impact.size()) << "tag " << tag;
    for (size_t i = 0; i < merged_impact.size(); ++i) {
      EXPECT_EQ(merged_impact[i].item, rebuilt_impact[i].item);
      EXPECT_EQ(merged_impact[i].score, rebuilt_impact[i].score);
    }
  }
}

TEST(InvertedIndexMergeTest, EmptyTailSharesEveryList) {
  ItemStore store;
  ASSERT_TRUE(store.Add(MakeItem(0, {0, 1}, 0.9f)).ok());
  ASSERT_TRUE(store.Add(MakeItem(1, {1}, 0.4f)).ok());
  const auto base = InvertedIndex::Build(ItemStoreView(store));
  ASSERT_TRUE(base.ok());

  uint64_t lists_touched = 0;
  const auto merged = base.value().MergeFrom(
      ItemStoreView(store), static_cast<ItemId>(store.num_items()),
      InvertedIndex::Options(), &lists_touched);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(lists_touched, 0u);
  for (TagId tag = 0; tag < base.value().num_tags(); ++tag) {
    EXPECT_EQ(merged.value().PostingsHandle(tag),
              base.value().PostingsHandle(tag))
        << "tag " << tag;
  }
}

TEST(SocialIndexMergeTest, OnlyTailOwnersBucketsAreRebuilt) {
  ItemStore store;
  ASSERT_TRUE(store.Add(MakeItem(0, {0}, 0.9f)).ok());
  ASSERT_TRUE(store.Add(MakeItem(1, {0}, 0.4f)).ok());
  ASSERT_TRUE(store.Add(MakeItem(0, {0}, 0.7f)).ok());
  const size_t kUsers = 4;
  const ItemStoreView base_view(&store, 3, store.TagUniverseSize());
  const SocialIndex base = SocialIndex::Build(base_view, kUsers);

  ASSERT_TRUE(store.Add(MakeItem(1, {0}, 0.99f)).ok());  // touches user 1
  uint64_t lists_touched = 0;
  const SocialIndex merged =
      base.MergeFrom(ItemStoreView(store), 3, kUsers, &lists_touched);
  EXPECT_EQ(lists_touched, 1u);
  EXPECT_EQ(merged.num_entries(), 4u);

  // User 0 untouched: shared bucket. User 1 rebuilt, best-first. Users
  // 2/3 own nothing either way.
  EXPECT_EQ(merged.BucketHandle(0), base.BucketHandle(0));
  EXPECT_NE(merged.BucketHandle(1), base.BucketHandle(1));
  EXPECT_EQ(merged.BucketHandle(2), nullptr);

  const SocialIndex rebuilt = SocialIndex::Build(ItemStoreView(store), kUsers);
  for (UserId user = 0; user < kUsers; ++user) {
    const auto merged_items = merged.ItemsOf(user);
    const auto rebuilt_items = rebuilt.ItemsOf(user);
    ASSERT_EQ(merged_items.size(), rebuilt_items.size()) << "user " << user;
    for (size_t i = 0; i < merged_items.size(); ++i) {
      EXPECT_EQ(merged_items[i].item, rebuilt_items[i].item);
      EXPECT_EQ(merged_items[i].score, rebuilt_items[i].score);
    }
  }
}

TEST(GridIndexMergeTest, OnlyTailCellsAreRebuilt) {
  ItemStore store;
  auto geo_item = [](UserId owner, float lat, float lon) {
    Item item = MakeItem(owner, {0}, 0.5f);
    item.has_geo = true;
    item.latitude = lat;
    item.longitude = lon;
    return item;
  };
  ASSERT_TRUE(store.Add(geo_item(0, 10.0f, 10.0f)).ok());   // cell A
  ASSERT_TRUE(store.Add(geo_item(0, 50.0f, 50.0f)).ok());   // cell B
  const ItemStoreView base_view(&store, 2, store.TagUniverseSize());
  const GridIndex base = GridIndex::Build(base_view, 1.0);

  // Tail lands in cell A and in a brand-new cell C.
  ASSERT_TRUE(store.Add(geo_item(1, 10.1f, 10.1f)).ok());
  ASSERT_TRUE(store.Add(geo_item(1, -30.0f, -30.0f)).ok());
  uint64_t cells_touched = 0;
  const GridIndex merged =
      GridIndex::MergeFrom(&base, ItemStoreView(store), 2, 1.0,
                           &cells_touched);
  EXPECT_EQ(cells_touched, 2u);
  EXPECT_EQ(merged.num_indexed_items(), 4u);
  EXPECT_EQ(merged.num_cells(), 3u);

  const GridIndex rebuilt = GridIndex::Build(ItemStoreView(store), 1.0);
  const GeoPoint centers[] = {{10.0f, 10.0f}, {50.0f, 50.0f},
                              {-30.0f, -30.0f}};
  for (const GeoPoint& center : centers) {
    EXPECT_EQ(merged.ItemsInRadius(center, 50.0),
              rebuilt.ItemsInRadius(center, 50.0));
  }

  // A base-less merge (no geo items below the horizon) only scans the
  // tail and still equals the full build.
  const GridIndex from_scratch =
      GridIndex::MergeFrom(nullptr, ItemStoreView(store), 0, 1.0, nullptr);
  EXPECT_EQ(from_scratch.num_indexed_items(), 4u);
}

// Randomized end-to-end check of MergeIndexes against BuildIndexes on a
// few hundred random items — the unit-level cousin of
// tests/core/compaction_invariance_test.cc.
TEST(MergeIndexesTest, RandomizedMergeEqualsRebuild) {
  Rng rng(1234);
  const size_t kUsers = 20;
  const size_t kTags = 15;
  ItemStore store;
  auto random_item = [&] {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(kUsers));
    item.tags = {static_cast<TagId>(rng.UniformIndex(kTags))};
    item.quality = static_cast<float>(rng.UniformDouble());
    return item;
  };
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(store.Add(random_item()).ok());
  const ItemStoreView base_view(&store, 300, store.TagUniverseSize());
  const auto base = BuildIndexes(base_view, kUsers);
  ASSERT_TRUE(base.ok());

  for (int i = 0; i < 60; ++i) ASSERT_TRUE(store.Add(random_item()).ok());
  IndexMergeStats stats;
  const auto merged = MergeIndexes(base.value(), 300, ItemStoreView(store),
                                   kUsers, InvertedIndex::Options(), &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(stats.items_merged, 60u);
  EXPECT_GT(stats.lists_touched, 0u);
  // The tail touches at most its own distinct tags + owners worth of
  // lists — never the whole catalogue's.
  EXPECT_LE(stats.lists_touched, static_cast<uint64_t>(kTags + kUsers));

  const auto rebuilt = BuildIndexes(ItemStoreView(store), kUsers);
  ASSERT_TRUE(rebuilt.ok());
  for (TagId tag = 0; tag < merged.value().inverted.num_tags(); ++tag) {
    EXPECT_EQ(Image(merged.value().inverted.Postings(tag)),
              Image(rebuilt.value().inverted.Postings(tag)))
        << "tag " << tag;
  }
  for (UserId user = 0; user < kUsers; ++user) {
    const auto a = merged.value().social.ItemsOf(user);
    const auto b = rebuilt.value().social.ItemsOf(user);
    ASSERT_EQ(a.size(), b.size()) << "user " << user;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].item, b[i].item);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

}  // namespace
}  // namespace amici
