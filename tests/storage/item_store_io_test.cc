#include "storage/item_store_io.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

ItemStore RandomStore(size_t num_items, uint64_t seed) {
  Rng rng(seed);
  ItemStore store;
  for (size_t i = 0; i < num_items; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(100));
    const size_t tag_count = 1 + rng.UniformIndex(5);
    for (size_t t = 0; t < tag_count; ++t) {
      item.tags.push_back(static_cast<TagId>(rng.UniformIndex(500)));
    }
    item.quality = static_cast<float>(rng.UniformDouble());
    if (rng.Bernoulli(0.5)) {
      item.has_geo = true;
      item.latitude = static_cast<float>(rng.UniformDouble(-80, 80));
      item.longitude = static_cast<float>(rng.UniformDouble(-170, 170));
    }
    EXPECT_TRUE(store.Add(item).ok());
  }
  return store;
}

void ExpectStoresEqual(const ItemStore& a, const ItemStore& b) {
  ASSERT_EQ(a.num_items(), b.num_items());
  for (ItemId i = 0; i < a.num_items(); ++i) {
    EXPECT_EQ(a.owner(i), b.owner(i));
    EXPECT_EQ(a.quality(i), b.quality(i));
    EXPECT_EQ(a.has_geo(i), b.has_geo(i));
    if (a.has_geo(i)) {
      EXPECT_EQ(a.latitude(i), b.latitude(i));
      EXPECT_EQ(a.longitude(i), b.longitude(i));
    }
    const auto tags_a = a.tags(i);
    const auto tags_b = b.tags(i);
    ASSERT_EQ(tags_a.size(), tags_b.size());
    for (size_t t = 0; t < tags_a.size(); ++t) {
      EXPECT_EQ(tags_a[t], tags_b[t]);
    }
  }
}

TEST(ItemStoreIoTest, RoundTripsRandomStore) {
  const ItemStore original = RandomStore(500, 1);
  const auto loaded = DeserializeItemStore(SerializeItemStore(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStoresEqual(original, loaded.value());
}

TEST(ItemStoreIoTest, RoundTripsEmptyStore) {
  const auto loaded = DeserializeItemStore(SerializeItemStore(ItemStore()));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_items(), 0u);
}

TEST(ItemStoreIoTest, FileRoundTrip) {
  const ItemStore original = RandomStore(200, 2);
  const std::string path =
      std::string(::testing::TempDir()) + "/store_io_test.amis";
  ASSERT_TRUE(SaveItemStore(original, path).ok());
  const auto loaded = LoadItemStore(path);
  ASSERT_TRUE(loaded.ok());
  ExpectStoresEqual(original, loaded.value());
  std::remove(path.c_str());
}

TEST(ItemStoreIoTest, DetectsCorruption) {
  std::string bytes = SerializeItemStore(RandomStore(100, 3));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  const auto loaded = DeserializeItemStore(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(ItemStoreIoTest, DetectsTruncation) {
  const std::string bytes = SerializeItemStore(RandomStore(50, 4));
  for (const size_t keep : {size_t{0}, size_t{5}, bytes.size() / 2,
                            bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeItemStore(bytes.substr(0, keep)).ok())
        << "kept " << keep;
  }
}

TEST(ItemStoreIoTest, RejectsWrongMagic) {
  std::string bytes = SerializeItemStore(RandomStore(10, 5));
  bytes[0] = 'X';
  EXPECT_EQ(DeserializeItemStore(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(TagDictionaryIoTest, RoundTripsWithStableIds) {
  TagDictionary original;
  for (int i = 0; i < 300; ++i) {
    original.Intern("tag-" + std::to_string(i * 7));
  }
  const auto loaded =
      DeserializeTagDictionary(SerializeTagDictionary(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), original.size());
  for (size_t t = 0; t < original.size(); ++t) {
    EXPECT_EQ(loaded.value().Name(static_cast<TagId>(t)),
              original.Name(static_cast<TagId>(t)));
    EXPECT_EQ(loaded.value().Lookup(original.Name(static_cast<TagId>(t))),
              static_cast<TagId>(t));
  }
}

TEST(TagDictionaryIoTest, RoundTripsEmptyAndUnicodeNames) {
  TagDictionary original;
  original.Intern("");
  original.Intern("caf\xc3\xa9");
  original.Intern(std::string("nul\0byte", 8));
  const auto loaded =
      DeserializeTagDictionary(SerializeTagDictionary(original));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().Name(2), std::string("nul\0byte", 8));
}

TEST(TagDictionaryIoTest, DetectsCorruption) {
  TagDictionary original;
  original.Intern("alpha");
  original.Intern("beta");
  std::string bytes = SerializeTagDictionary(original);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  EXPECT_EQ(DeserializeTagDictionary(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(TagDictionaryIoTest, FileRoundTrip) {
  TagDictionary original;
  original.Intern("x");
  const std::string path =
      std::string(::testing::TempDir()) + "/dict_io_test.amid";
  ASSERT_TRUE(SaveTagDictionary(original, path).ok());
  const auto loaded = LoadTagDictionary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Lookup("x"), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amici
