#include "storage/item_store.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

Item MakeItem(UserId owner, std::vector<TagId> tags, float quality) {
  Item item;
  item.owner = owner;
  item.tags = std::move(tags);
  item.quality = quality;
  return item;
}

TEST(ItemStoreTest, AddAssignsSequentialIds) {
  ItemStore store;
  const auto a = store.Add(MakeItem(1, {0}, 0.5f));
  const auto b = store.Add(MakeItem(2, {1}, 0.6f));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(store.num_items(), 2u);
}

TEST(ItemStoreTest, ColumnsRoundTrip) {
  ItemStore store;
  Item item = MakeItem(7, {3, 1, 2}, 0.75f);
  item.has_geo = true;
  item.latitude = 37.5f;
  item.longitude = -122.0f;
  const auto id = store.Add(item);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.owner(id.value()), 7u);
  EXPECT_FLOAT_EQ(store.quality(id.value()), 0.75f);
  EXPECT_TRUE(store.has_geo(id.value()));
  EXPECT_FLOAT_EQ(store.latitude(id.value()), 37.5f);
  EXPECT_FLOAT_EQ(store.longitude(id.value()), -122.0f);
}

TEST(ItemStoreTest, TagsSortedAndDeduplicated) {
  ItemStore store;
  const auto id = store.Add(MakeItem(1, {5, 2, 5, 9, 2}, 0.1f));
  ASSERT_TRUE(id.ok());
  const auto tags = store.tags(id.value());
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], 2u);
  EXPECT_EQ(tags[1], 5u);
  EXPECT_EQ(tags[2], 9u);
}

TEST(ItemStoreTest, HasTagBinarySearch) {
  ItemStore store;
  const auto id = store.Add(MakeItem(1, {10, 20, 30}, 0.2f));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store.HasTag(id.value(), 10));
  EXPECT_TRUE(store.HasTag(id.value(), 30));
  EXPECT_FALSE(store.HasTag(id.value(), 15));
  EXPECT_FALSE(store.HasTag(id.value(), 31));
}

TEST(ItemStoreTest, RejectsInvalidOwner) {
  ItemStore store;
  Item item = MakeItem(kInvalidUserId, {1}, 0.5f);
  EXPECT_EQ(store.Add(item).status().code(), StatusCode::kInvalidArgument);
}

TEST(ItemStoreTest, RejectsEmptyTagList) {
  ItemStore store;
  EXPECT_EQ(store.Add(MakeItem(1, {}, 0.5f)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ItemStoreTest, RejectsQualityOutOfRange) {
  ItemStore store;
  EXPECT_FALSE(store.Add(MakeItem(1, {0}, -0.1f)).ok());
  EXPECT_FALSE(store.Add(MakeItem(1, {0}, 1.1f)).ok());
  EXPECT_TRUE(store.Add(MakeItem(1, {0}, 0.0f)).ok());
  EXPECT_TRUE(store.Add(MakeItem(1, {0}, 1.0f)).ok());
}

TEST(ItemStoreTest, FailedAddLeavesStoreUnchanged) {
  ItemStore store;
  ASSERT_TRUE(store.Add(MakeItem(1, {0}, 0.5f)).ok());
  ASSERT_FALSE(store.Add(MakeItem(1, {}, 0.5f)).ok());
  EXPECT_EQ(store.num_items(), 1u);
  EXPECT_EQ(store.tags(0).size(), 1u);
}

TEST(ItemStoreTest, TagUniverseTracksMaxTag) {
  ItemStore store;
  EXPECT_EQ(store.TagUniverseSize(), 0u);
  ASSERT_TRUE(store.Add(MakeItem(1, {41}, 0.5f)).ok());
  EXPECT_EQ(store.TagUniverseSize(), 42u);
  ASSERT_TRUE(store.Add(MakeItem(1, {7}, 0.5f)).ok());
  EXPECT_EQ(store.TagUniverseSize(), 42u);
}

TEST(ItemStoreTest, MemoryGrowsWithItems) {
  ItemStore small;
  ASSERT_TRUE(small.Add(MakeItem(0, {0}, 0.1f)).ok());
  ItemStore big;
  // Storage is chunked (StableColumn), so growth is only observable once
  // the item count crosses a chunk boundary.
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        big.Add(MakeItem(static_cast<UserId>(i % 10),
                         {static_cast<TagId>(i % 100)}, 0.5f))
            .ok());
  }
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(ItemStoreTest, ViewPinsAPrefix) {
  ItemStore store;
  ASSERT_TRUE(store.Add(MakeItem(1, {5}, 0.5f)).ok());
  ASSERT_TRUE(store.Add(MakeItem(2, {9}, 0.6f)).ok());
  const ItemStoreView view(store);
  EXPECT_EQ(view.num_items(), 2u);
  EXPECT_EQ(view.TagUniverseSize(), 10u);

  // Appends past the view's bound do not change what the view exposes.
  ASSERT_TRUE(store.Add(MakeItem(3, {100}, 0.7f)).ok());
  EXPECT_EQ(view.num_items(), 2u);
  EXPECT_EQ(view.TagUniverseSize(), 10u);
  EXPECT_EQ(view.owner(1), 2u);
  EXPECT_TRUE(view.HasTag(0, 5));
  EXPECT_EQ(store.num_items(), 3u);
}

// The single-writer / many-readers contract: readers bounded by an
// observed num_items() must see fully-written, immutable items while the
// writer keeps appending. Run under -fsanitize=thread to verify the
// release/acquire publication (tools/run_tier1.sh --tsan does this).
TEST(ItemStoreTest, ConcurrentReadersSeePublishedPrefix) {
  constexpr size_t kItems = 20000;
  constexpr int kReaders = 4;
  ItemStore store;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done, &violations] {
      while (!done.load(std::memory_order_acquire)) {
        const size_t bound = store.num_items();
        for (size_t i = 0; i < bound; ++i) {
          const ItemId item = static_cast<ItemId>(i);
          const bool ok = store.owner(item) == i % 10 &&
                          store.quality(item) == 0.5f &&
                          store.tags(item).size() == 1 &&
                          store.tags(item)[0] == static_cast<TagId>(i % 97);
          if (!ok) violations.fetch_add(1);
        }
      }
    });
  }

  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(store
                    .Add(MakeItem(static_cast<UserId>(i % 10),
                                  {static_cast<TagId>(i % 97)}, 0.5f))
                    .ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(store.num_items(), kItems);
}

TEST(ItemStoreTest, ValidateForAddMatchesAddVerdicts) {
  ItemStore store;
  const Item good = MakeItem(1, {3, 1, 3}, 0.5f);  // dup tags are fine
  EXPECT_TRUE(store.ValidateForAdd(good).ok());
  EXPECT_TRUE(store.Add(good).ok());

  Item bad_quality = good;
  bad_quality.quality = 1.5f;
  EXPECT_EQ(store.ValidateForAdd(bad_quality).code(),
            StatusCode::kInvalidArgument);
  Item no_tags = good;
  no_tags.tags.clear();
  EXPECT_EQ(store.ValidateForAdd(no_tags).code(),
            StatusCode::kInvalidArgument);
}

TEST(ItemStoreTest, ValidateForAddAllAcceptsLargeBatches) {
  ItemStore store;
  // The cumulative capacity bound must stay proportional to the batch's
  // real footprint: a bulk-load-sized batch of small items is nowhere
  // near the 268M-element column capacity and must pass.
  std::vector<Item> batch(40000, MakeItem(1, {2}, 0.5f));
  EXPECT_TRUE(store.ValidateForAddAll(batch).ok());

  batch[12345].quality = -1.0f;
  const Status status = store.ValidateForAddAll(batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("batch item 12345"), std::string::npos)
      << status.message();
  EXPECT_EQ(store.num_items(), 0u) << "validation must not mutate";
}

}  // namespace
}  // namespace amici
