#include "storage/buffer_pool.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string(::testing::TempDir()) + "/buffer_pool_test.blk";
    auto writer = BlockFile::Create(path_);
    ASSERT_TRUE(writer.ok());
    char block[BlockFile::kBlockSize];
    for (int i = 0; i < 16; ++i) {
      std::memset(block, 'a' + i, sizeof(block));
      ASSERT_TRUE(writer.value().AppendBlock(block).ok());
    }
    ASSERT_TRUE(writer.value().Sync().ok());
    auto reader = BlockFile::Open(path_);
    ASSERT_TRUE(reader.ok());
    file_ = std::make_unique<BlockFile>(std::move(reader).value());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::unique_ptr<BlockFile> file_;
};

TEST_F(BufferPoolTest, FetchReturnsBlockContent) {
  BufferPool pool(file_.get(), 4);
  const auto block = pool.Fetch(3);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value()->data()[0], 'a' + 3);
  EXPECT_EQ(block.value()->data()[BlockFile::kBlockSize - 1], 'a' + 3);
}

TEST_F(BufferPoolTest, SecondFetchHits) {
  BufferPool pool(file_.get(), 4);
  ASSERT_TRUE(pool.Fetch(5).ok());
  ASSERT_TRUE(pool.Fetch(5).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, CapacityEnforcedWithLruEviction) {
  BufferPool pool(file_.get(), 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // 0 most recent
  ASSERT_TRUE(pool.Fetch(2).ok());  // evicts 1
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_TRUE(pool.Fetch(0).ok());  // still cached
  EXPECT_EQ(pool.hits(), 2u);
  ASSERT_TRUE(pool.Fetch(1).ok());  // miss again
  EXPECT_EQ(pool.misses(), 4u);
}

TEST_F(BufferPoolTest, EvictedBlockSurvivesViaHandle) {
  BufferPool pool(file_.get(), 1);
  const auto kept = pool.Fetch(7);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(pool.Fetch(8).ok());  // evicts 7
  EXPECT_EQ(kept.value()->data()[0], 'a' + 7);  // handle still valid
}

TEST_F(BufferPoolTest, OutOfRangeBlockPropagatesError) {
  BufferPool pool(file_.get(), 2);
  const auto block = pool.Fetch(999);
  ASSERT_FALSE(block.ok());
  EXPECT_EQ(block.status().code(), StatusCode::kOutOfRange);
}

TEST_F(BufferPoolTest, ConcurrentFetchesAreCoherent) {
  BufferPool pool(file_.get(), 8);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      for (int i = 0; i < 300; ++i) {
        const uint64_t id = static_cast<uint64_t>((t + i) % 16);
        const auto block = pool.Fetch(id);
        if (!block.ok() ||
            block.value()->data()[100] != static_cast<char>('a' + id)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(pool.size(), 8u);
  // The cyclic 16-block pattern over an 8-slot pool may legitimately never
  // hit (LRU worst case), so force a deterministic hit before asserting.
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_GT(pool.hits(), 0u);
}

TEST_F(BufferPoolTest, RejectsBadConstruction) {
  EXPECT_DEATH(BufferPool(nullptr, 2), "");
  EXPECT_DEATH(BufferPool(file_.get(), 0), "");
}

}  // namespace
}  // namespace amici
