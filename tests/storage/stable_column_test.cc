#include "storage/stable_column.h"

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace amici {
namespace {

using Column = StableColumn<uint32_t>;

TEST(StableColumnTest, EmptyColumnAllocatesNothing) {
  Column col;
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(col.AllocatedBytes(), 0u);
}

TEST(StableColumnTest, FirstAppendPaysRootPlusOneBlockPlusOneChunk) {
  Column col;
  col.push_back(7);
  EXPECT_EQ(col.size(), 1u);
  EXPECT_EQ(col[0], 7u);
  const size_t expected = Column::kChunkSize * sizeof(uint32_t)   // 1 chunk
                          + Column::kDirBlockSize * sizeof(void*)  // 1 block
                          + Column::kMaxDirBlocks * sizeof(void*);  // root
  EXPECT_EQ(col.AllocatedBytes(), expected);
  // The whole point of the two-level directory: a near-empty column costs
  // ~37KB, not the 256KB flat directory plus chunk it used to.
  EXPECT_LT(col.AllocatedBytes(), 64u * 1024);
}

TEST(StableColumnTest, PushBackReadBackAcrossManyChunks) {
  Column col;
  const size_t n = 3 * Column::kChunkSize + 123;
  for (size_t i = 0; i < n; ++i) col.push_back(static_cast<uint32_t>(i * 3));
  ASSERT_EQ(col.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(col[i], static_cast<uint32_t>(i * 3)) << "index " << i;
  }
}

TEST(StableColumnTest, PointersStableAcrossGrowth) {
  Column col;
  col.push_back(42);
  const uint32_t* first = &col[0];
  for (size_t i = 0; i < 4 * Column::kChunkSize; ++i) {
    col.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_EQ(&col[0], first);
  EXPECT_EQ(*first, 42u);
}

TEST(StableColumnTest, AppendRunPadsToChunkBoundary) {
  Column col;
  std::vector<uint32_t> run(Column::kChunkSize - 10);
  std::iota(run.begin(), run.end(), 1000u);
  const size_t a = col.AppendRun(run.data(), run.size());
  EXPECT_EQ(a, 0u);

  // 10 slots remain in the chunk; a 20-element run must skip them so it
  // stays contiguous.
  std::vector<uint32_t> run2(20);
  std::iota(run2.begin(), run2.end(), 5000u);
  const size_t b = col.AppendRun(run2.data(), run2.size());
  EXPECT_EQ(b, Column::kChunkSize);
  const uint32_t* p = col.RunData(b);
  for (size_t i = 0; i < run2.size(); ++i) EXPECT_EQ(p[i], run2[i]);
  // Padding slots read as zero (value-initialized chunks).
  EXPECT_EQ(col[Column::kChunkSize - 1], 0u);
}

TEST(StableColumnTest, AppendRunsMatchesIndividualAppendRuns) {
  std::vector<uint32_t> data;
  std::vector<uint32_t> counts;
  uint32_t next = 1;
  // Row sizes chosen to force several padding events.
  for (uint32_t len : {5u, 4000u, 4000u, 1u, 8192u, 0u, 300u, 8000u, 17u}) {
    counts.push_back(len);
    for (uint32_t i = 0; i < len; ++i) data.push_back(next++);
  }

  Column bulk;
  std::vector<uint64_t> starts(counts.size());
  bulk.AppendRuns(data.data(), counts.data(), counts.size(), starts.data());

  Column serial;
  const uint32_t* src = data.data();
  for (size_t i = 0; i < counts.size(); ++i) {
    const size_t start = serial.AppendRun(src, counts[i]);
    EXPECT_EQ(starts[i], start) << "run " << i;
    src += counts[i];
  }
  ASSERT_EQ(bulk.size(), serial.size());

  src = data.data();
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint32_t* run = bulk.RunData(starts[i]);
    for (uint32_t j = 0; j < counts[i]; ++j) {
      ASSERT_EQ(run[j], src[j]) << "run " << i << " element " << j;
    }
    src += counts[i];
  }
}

TEST(StableColumnTest, AppendAllSplitsAcrossChunksWithoutPadding) {
  Column col;
  col.push_back(99);
  std::vector<uint32_t> data(2 * Column::kChunkSize + 77);
  std::iota(data.begin(), data.end(), 0u);
  ASSERT_TRUE(col.CanAppendAll(data.size()));
  col.AppendAll(data.data(), data.size());
  ASSERT_EQ(col.size(), 1 + data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(col[1 + i], data[i]) << "index " << i;
  }
}

TEST(StableColumnTest, GrowthCrossesDirectoryBlockBoundary) {
  // Fill past the first directory block (512 chunks) so the root's second
  // block slot comes into play; use AppendRun to cover the bulk path.
  Column col;
  std::vector<uint32_t> chunk(Column::kChunkSize);
  const size_t chunks = Column::kDirBlockSize + 3;
  for (size_t c = 0; c < chunks; ++c) {
    std::iota(chunk.begin(), chunk.end(), static_cast<uint32_t>(c));
    const size_t start = col.AppendRun(chunk.data(), chunk.size());
    EXPECT_EQ(start, c * Column::kChunkSize);
  }
  ASSERT_EQ(col.size(), chunks * Column::kChunkSize);
  // Spot-check one element per chunk, including across the boundary.
  for (size_t c = 0; c < chunks; ++c) {
    ASSERT_EQ(col[c * Column::kChunkSize + 5], static_cast<uint32_t>(c + 5));
  }
  const size_t expected =
      chunks * Column::kChunkSize * sizeof(uint32_t)     // chunks
      + 2 * Column::kDirBlockSize * sizeof(void*)        // 2 dir blocks
      + Column::kMaxDirBlocks * sizeof(void*);           // root
  EXPECT_EQ(col.AllocatedBytes(), expected);
}

TEST(StableColumnTest, CopyPreservesContentAndIndependence) {
  Column col;
  for (uint32_t i = 0; i < 10000; ++i) col.push_back(i * 7);
  Column copy(col);
  ASSERT_EQ(copy.size(), col.size());
  for (size_t i = 0; i < copy.size(); ++i) ASSERT_EQ(copy[i], col[i]);
  copy.push_back(1);
  EXPECT_EQ(copy.size(), col.size() + 1);
  EXPECT_NE(&copy[0], &col[0]);

  Column assigned;
  assigned.push_back(5);
  assigned = col;
  ASSERT_EQ(assigned.size(), col.size());
  EXPECT_EQ(assigned[9999], col[9999]);
}

TEST(StableColumnTest, MoveTransfersStorage) {
  Column col;
  for (uint32_t i = 0; i < 20000; ++i) col.push_back(i);
  const uint32_t* stable = &col[12345];
  Column moved(std::move(col));
  EXPECT_EQ(moved.size(), 20000u);
  EXPECT_EQ(&moved[12345], stable);
  EXPECT_EQ(moved[12345], 12345u);

  Column target;
  target.push_back(1);
  target = std::move(moved);
  EXPECT_EQ(target.size(), 20000u);
  EXPECT_EQ(&target[12345], stable);
}

TEST(StableColumnTest, CanAppendBounds) {
  Column col;
  EXPECT_TRUE(col.CanAppend(0));
  EXPECT_TRUE(col.CanAppend(Column::kMaxRun));
  EXPECT_FALSE(col.CanAppend(Column::kMaxRun + 1));
}

}  // namespace
}  // namespace amici
