#include "storage/posting_list.h"

#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace amici {
namespace {

std::vector<ScoredItem> MakePostings(size_t count, uint32_t stride,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<ScoredItem> postings;
  uint32_t doc = 0;
  for (size_t i = 0; i < count; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.UniformIndex(stride));
    postings.push_back({doc, static_cast<float>(rng.UniformDouble())});
  }
  return postings;
}

TEST(PostingListTest, EmptyList) {
  const auto list = PostingList::Build({});
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list.value().empty());
  EXPECT_EQ(list.value().max_score(), 0.0f);
  auto it = list.value().NewIterator();
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, IterationYieldsAllDocsInOrder) {
  const auto postings = MakePostings(1000, 5, 1);
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().size(), postings.size());
  size_t i = 0;
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, postings.size());
    EXPECT_EQ(it.Doc(), postings[i].item);
  }
  EXPECT_EQ(i, postings.size());
}

TEST(PostingListTest, ImpactBoundsAreConservative) {
  const auto postings = MakePostings(500, 3, 2);
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  size_t i = 0;
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next(), ++i) {
    EXPECT_GE(it.ImpactBound() + 1e-6f, postings[i].score)
        << "bound must never underestimate";
    EXPECT_LE(it.ImpactBound(), list.value().max_score() + 1e-6f);
  }
}

TEST(PostingListTest, QuantizationErrorIsBounded) {
  const auto postings = MakePostings(500, 3, 3);
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  const float resolution = list.value().max_score() / 255.0f;
  size_t i = 0;
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next(), ++i) {
    EXPECT_LE(it.ImpactBound() - postings[i].score, resolution + 1e-6f);
  }
}

TEST(PostingListTest, SeekGeqFindsExactAndGaps) {
  // Docs 10, 20, ..., 1000.
  std::vector<ScoredItem> postings;
  for (uint32_t d = 10; d <= 1000; d += 10) postings.push_back({d, 0.5f});
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());

  auto it = list.value().NewIterator();
  it.SeekGeq(10);
  EXPECT_EQ(it.Doc(), 10u);
  it.SeekGeq(55);  // between postings
  EXPECT_EQ(it.Doc(), 60u);
  it.SeekGeq(60);  // already there: no-op
  EXPECT_EQ(it.Doc(), 60u);
  it.SeekGeq(999);
  EXPECT_EQ(it.Doc(), 1000u);
  it.SeekGeq(1001);  // beyond the end
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, SeekGeqAcrossBlockBoundaries) {
  PostingList::Options options;
  options.block_size = 8;
  const auto postings = MakePostings(200, 4, 4);
  const auto list = PostingList::Build(postings, options);
  ASSERT_TRUE(list.ok());
  // Seek to each posting's doc id from a fresh iterator.
  for (size_t i = 0; i < postings.size(); i += 17) {
    auto it = list.value().NewIterator();
    it.SeekGeq(postings[i].item);
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.Doc(), postings[i].item);
  }
}

TEST(PostingListTest, SkiplessSeekMatchesSkipped) {
  const auto postings = MakePostings(300, 6, 5);
  PostingList::Options with;
  with.enable_skips = true;
  with.block_size = 16;
  PostingList::Options without;
  without.enable_skips = false;
  without.block_size = 16;
  const auto fast = PostingList::Build(postings, with);
  const auto slow = PostingList::Build(postings, without);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const ItemId target = static_cast<ItemId>(
        rng.UniformIndex(postings.back().item + 10));
    auto fast_it = fast.value().NewIterator();
    auto slow_it = slow.value().NewIterator();
    fast_it.SeekGeq(target);
    slow_it.SeekGeq(target);
    ASSERT_EQ(fast_it.Valid(), slow_it.Valid()) << "target " << target;
    if (fast_it.Valid()) {
      EXPECT_EQ(fast_it.Doc(), slow_it.Doc());
    }
  }
}

TEST(PostingListTest, RejectsUnsortedInput) {
  EXPECT_FALSE(PostingList::Build({{5, 0.1f}, {5, 0.2f}}).ok());
  EXPECT_FALSE(PostingList::Build({{5, 0.1f}, {4, 0.2f}}).ok());
}

TEST(PostingListTest, RejectsNegativeScores) {
  EXPECT_FALSE(PostingList::Build({{1, -0.5f}}).ok());
}

TEST(PostingListTest, RejectsZeroBlockSize) {
  PostingList::Options options;
  options.block_size = 0;
  EXPECT_FALSE(PostingList::Build({{1, 0.5f}}, options).ok());
}

TEST(PostingListTest, CompressionBeatsRawEncoding) {
  // Dense small-gap postings compress far below 8 bytes/posting.
  std::vector<ScoredItem> postings;
  for (uint32_t d = 0; d < 20000; ++d) postings.push_back({d * 2, 0.5f});
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  EXPECT_LT(list.value().SizeBytes(),
            postings.size() * sizeof(ScoredItem) / 2);
}

TEST(PostingListTest, SingleBlockSingleEntry) {
  const auto list = PostingList::Build({{42, 0.7f}});
  ASSERT_TRUE(list.ok());
  auto it = list.value().NewIterator();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.Doc(), 42u);
  EXPECT_GE(it.ImpactBound(), 0.7f - 1e-6f);
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, ZeroScoresAllowed) {
  const auto list = PostingList::Build({{1, 0.0f}, {2, 0.0f}});
  ASSERT_TRUE(list.ok());
  auto it = list.value().NewIterator();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.ImpactBound(), 0.0f);
}

// --- Block-max bounds and pruning ---------------------------------------

TEST(PostingListTest, ImpactBoundIsExactFloatUpperBound) {
  // The hardened quantizer must guarantee bound >= score in FLOAT
  // arithmetic, with no epsilon: block-max pruning exactness builds on
  // this, not on an approximate "conservative up to 1e-6".
  const auto postings = MakePostings(2000, 3, 21);
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  size_t i = 0;
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next(), ++i) {
    ASSERT_GE(it.ImpactBound(), postings[i].score);
  }
}

TEST(PostingListTest, BlockMaxBoundCoversEveryPostingInBlock) {
  PostingList::Options options;
  options.block_size = 16;
  const auto postings = MakePostings(500, 4, 22);
  const auto list = PostingList::Build(postings, options);
  ASSERT_TRUE(list.ok());
  size_t i = 0;
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next(), ++i) {
    ASSERT_GE(it.BlockMaxBound(), it.ImpactBound());
    ASSERT_GE(it.BlockMaxBound(), postings[i].score);
    ASSERT_LE(it.BlockMaxBound(), list.value().max_score());
  }
}

TEST(PostingListTest, BlockMaxBoundIsTightPerBlock) {
  // Some block must have a bound strictly below the list max — otherwise
  // the skip table degenerated to the list-global bound. With 50 blocks
  // of 8 uniform scores this fails with essentially probability 0.
  PostingList::Options options;
  options.block_size = 8;
  const auto postings = MakePostings(400, 4, 23);
  const auto list = PostingList::Build(postings, options);
  ASSERT_TRUE(list.ok());
  bool some_block_below_max = false;
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next()) {
    if (it.BlockMaxBound() < list.value().max_score()) {
      some_block_below_max = true;
      break;
    }
  }
  EXPECT_TRUE(some_block_below_max);
}

TEST(PostingListTest, DisabledBlockMaxSaturatesToListBound) {
  PostingList::Options options;
  options.block_size = 8;
  options.enable_block_max = false;
  const auto postings = MakePostings(200, 4, 24);
  const auto list = PostingList::Build(postings, options);
  ASSERT_TRUE(list.ok());
  for (auto it = list.value().NewIterator(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.BlockMaxBound(), list.value().max_score());
  }
}

TEST(PostingListTest, SkipToBlockWithBoundAboveStaysWhenCurrentQualifies) {
  const auto postings = MakePostings(100, 4, 25);
  const auto list = PostingList::Build(postings);
  ASSERT_TRUE(list.ok());
  auto it = list.value().NewIterator();
  it.Next();
  it.Next();
  const ItemId doc = it.Doc();
  // Any threshold at or below the current block's bound is a no-op.
  ASSERT_TRUE(it.SkipToBlockWithBoundAbove(-1.0));
  EXPECT_EQ(it.Doc(), doc);
  ASSERT_TRUE(it.SkipToBlockWithBoundAbove(it.BlockMaxBound()));
  EXPECT_EQ(it.Doc(), doc);
}

TEST(PostingListTest, SkipToBlockWithBoundAboveLandsOnQualifyingBlock) {
  // Low-scored filler with one high-scored block far into the list.
  std::vector<ScoredItem> postings;
  for (uint32_t d = 0; d < 640; ++d) {
    const bool spike = d >= 512 && d < 520;
    postings.push_back({d, spike ? 0.9f : 0.1f});
  }
  PostingList::Options options;
  options.block_size = 8;
  const auto list = PostingList::Build(postings, options);
  ASSERT_TRUE(list.ok());

  auto it = list.value().NewIterator();
  ASSERT_TRUE(it.SkipToBlockWithBoundAbove(0.5));
  EXPECT_EQ(it.Doc(), 512u);
  EXPECT_GE(it.BlockMaxBound(), 0.9f);
  // 64 blocks of 8; the spike is block 64 (0-based), so 63 blocks were
  // passed over undecoded and 2 were decoded (block 0 + the landing).
  EXPECT_EQ(it.blocks_decoded(), 2u);
  EXPECT_EQ(it.blocks_skipped(), 63u);

  // Consume the spike block; no block beyond it qualifies, so the next
  // pruning probe exhausts the iterator.
  while (it.Valid() && it.Doc() < 520) it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_FALSE(it.SkipToBlockWithBoundAbove(0.5));
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, TraversalCountersTrackDecodes) {
  PostingList::Options options;
  options.block_size = 8;
  const auto postings = MakePostings(100, 4, 26);  // 13 blocks
  const auto list = PostingList::Build(postings, options);
  ASSERT_TRUE(list.ok());

  auto it = list.value().NewIterator();
  while (it.Valid()) it.Next();
  EXPECT_EQ(it.blocks_decoded(), 13u);
  EXPECT_EQ(it.blocks_skipped(), 0u);

  // A far SeekGeq decodes two blocks (first + landing, block 11) and
  // skips blocks 1..10 in between.
  auto seeker = list.value().NewIterator();
  seeker.SeekGeq(postings[90].item);
  ASSERT_TRUE(seeker.Valid());
  EXPECT_EQ(seeker.blocks_decoded(), 2u);
  EXPECT_EQ(seeker.blocks_skipped(), 10u);
}

TEST(PostingListTest, BlockMaxSurvivesMergeFrom) {
  PostingList::Options options;
  options.block_size = 8;
  const auto postings = MakePostings(120, 4, 27);
  const auto base_postings =
      std::vector<ScoredItem>(postings.begin(), postings.end() - 40);
  const auto tail =
      std::vector<ScoredItem>(postings.end() - 40, postings.end());
  const auto base = PostingList::Build(base_postings, options);
  ASSERT_TRUE(base.ok());
  auto score_of = [&](ItemId item) {
    for (const auto& p : postings) {
      if (p.item == item) return p.score;
    }
    return 0.0f;
  };
  const auto merged =
      base.value().MergeFrom(std::span<const ScoredItem>(tail), score_of);
  ASSERT_TRUE(merged.ok());
  const auto rebuilt = PostingList::Build(postings, options);
  ASSERT_TRUE(rebuilt.ok());
  auto merged_it = merged.value().NewIterator();
  auto rebuilt_it = rebuilt.value().NewIterator();
  while (rebuilt_it.Valid()) {
    ASSERT_TRUE(merged_it.Valid());
    EXPECT_EQ(merged_it.Doc(), rebuilt_it.Doc());
    EXPECT_EQ(merged_it.ImpactBound(), rebuilt_it.ImpactBound());
    EXPECT_EQ(merged_it.BlockMaxBound(), rebuilt_it.BlockMaxBound());
    merged_it.Next();
    rebuilt_it.Next();
  }
  EXPECT_FALSE(merged_it.Valid());
}

}  // namespace
}  // namespace amici
