#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/posting_list.h"
#include "util/rng.h"

namespace amici {
namespace {

std::vector<ScoredItem> MakePostings(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScoredItem> postings;
  uint32_t doc = 0;
  for (size_t i = 0; i < count; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.UniformIndex(7));
    postings.push_back({doc, static_cast<float>(rng.UniformDouble())});
  }
  return postings;
}

void ExpectListsEqual(const PostingList& a, const PostingList& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.max_score(), b.max_score());
  EXPECT_EQ(a.options().block_size, b.options().block_size);
  EXPECT_EQ(a.options().enable_skips, b.options().enable_skips);
  auto it_a = a.NewIterator();
  auto it_b = b.NewIterator();
  while (it_a.Valid() && it_b.Valid()) {
    EXPECT_EQ(it_a.Doc(), it_b.Doc());
    EXPECT_EQ(it_a.ImpactBound(), it_b.ImpactBound());
    it_a.Next();
    it_b.Next();
  }
  EXPECT_EQ(it_a.Valid(), it_b.Valid());
}

TEST(PostingListSerializeTest, RoundTripsRandomLists) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const auto original = PostingList::Build(MakePostings(700, seed));
    ASSERT_TRUE(original.ok());
    std::string bytes;
    original.value().SerializeTo(&bytes);
    size_t offset = 0;
    const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(offset, bytes.size());
    ExpectListsEqual(original.value(), loaded.value());
  }
}

TEST(PostingListSerializeTest, RoundTripsEmptyList) {
  const auto original = PostingList::Build({});
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(PostingListSerializeTest, RoundTripsNonDefaultOptions) {
  PostingList::Options options;
  options.block_size = 16;
  options.enable_skips = false;
  const auto original = PostingList::Build(MakePostings(100, 4), options);
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded.ok());
  ExpectListsEqual(original.value(), loaded.value());
}

TEST(PostingListSerializeTest, ConsecutiveListsShareOneBuffer) {
  const auto first = PostingList::Build(MakePostings(50, 5));
  const auto second = PostingList::Build(MakePostings(80, 6));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  std::string bytes;
  first.value().SerializeTo(&bytes);
  second.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded_first = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded_first.ok());
  const auto loaded_second = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded_second.ok());
  EXPECT_EQ(offset, bytes.size());
  ExpectListsEqual(first.value(), loaded_first.value());
  ExpectListsEqual(second.value(), loaded_second.value());
}

TEST(PostingListSerializeTest, TruncationFailsCleanly) {
  const auto original = PostingList::Build(MakePostings(120, 7));
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  for (size_t keep = 0; keep < bytes.size(); keep += bytes.size() / 9 + 1) {
    const std::string cut = bytes.substr(0, keep);
    size_t offset = 0;
    EXPECT_FALSE(PostingList::DeserializeFrom(cut, &offset).ok())
        << "kept " << keep;
  }
}

TEST(PostingListSerializeTest, CountMismatchDetected) {
  const auto original = PostingList::Build(MakePostings(64, 8));
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  // First varint is the posting count; bump it.
  bytes[0] = static_cast<char>(bytes[0] ^ 0x01);
  size_t offset = 0;
  EXPECT_FALSE(PostingList::DeserializeFrom(bytes, &offset).ok());
}

}  // namespace
}  // namespace amici
