#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/posting_list.h"
#include "util/rng.h"
#include "util/varint.h"

namespace amici {
namespace {

std::vector<ScoredItem> MakePostings(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScoredItem> postings;
  uint32_t doc = 0;
  for (size_t i = 0; i < count; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.UniformIndex(7));
    postings.push_back({doc, static_cast<float>(rng.UniformDouble())});
  }
  return postings;
}

void ExpectListsEqual(const PostingList& a, const PostingList& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.max_score(), b.max_score());
  EXPECT_EQ(a.options().block_size, b.options().block_size);
  EXPECT_EQ(a.options().enable_skips, b.options().enable_skips);
  EXPECT_EQ(a.options().enable_block_max, b.options().enable_block_max);
  auto it_a = a.NewIterator();
  auto it_b = b.NewIterator();
  while (it_a.Valid() && it_b.Valid()) {
    EXPECT_EQ(it_a.Doc(), it_b.Doc());
    EXPECT_EQ(it_a.ImpactBound(), it_b.ImpactBound());
    EXPECT_EQ(it_a.BlockMaxBound(), it_b.BlockMaxBound());
    it_a.Next();
    it_b.Next();
  }
  EXPECT_EQ(it_a.Valid(), it_b.Valid());
}

TEST(PostingListSerializeTest, RoundTripsRandomLists) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const auto original = PostingList::Build(MakePostings(700, seed));
    ASSERT_TRUE(original.ok());
    std::string bytes;
    original.value().SerializeTo(&bytes);
    size_t offset = 0;
    const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(offset, bytes.size());
    ExpectListsEqual(original.value(), loaded.value());
  }
}

TEST(PostingListSerializeTest, RoundTripsEmptyList) {
  const auto original = PostingList::Build({});
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(PostingListSerializeTest, RoundTripsNonDefaultOptions) {
  PostingList::Options options;
  options.block_size = 16;
  options.enable_skips = false;
  const auto original = PostingList::Build(MakePostings(100, 4), options);
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded.ok());
  ExpectListsEqual(original.value(), loaded.value());
}

TEST(PostingListSerializeTest, ConsecutiveListsShareOneBuffer) {
  const auto first = PostingList::Build(MakePostings(50, 5));
  const auto second = PostingList::Build(MakePostings(80, 6));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  std::string bytes;
  first.value().SerializeTo(&bytes);
  second.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded_first = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded_first.ok());
  const auto loaded_second = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded_second.ok());
  EXPECT_EQ(offset, bytes.size());
  ExpectListsEqual(first.value(), loaded_first.value());
  ExpectListsEqual(second.value(), loaded_second.value());
}

TEST(PostingListSerializeTest, TruncationFailsCleanly) {
  const auto original = PostingList::Build(MakePostings(120, 7));
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  for (size_t keep = 0; keep < bytes.size(); keep += bytes.size() / 9 + 1) {
    const std::string cut = bytes.substr(0, keep);
    size_t offset = 0;
    EXPECT_FALSE(PostingList::DeserializeFrom(cut, &offset).ok())
        << "kept " << keep;
  }
}

TEST(PostingListSerializeTest, CountMismatchDetected) {
  const auto original = PostingList::Build(MakePostings(64, 8));
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  // The posting-count varint follows the version byte; bump it.
  bytes[1] = static_cast<char>(bytes[1] ^ 0x01);
  size_t offset = 0;
  EXPECT_FALSE(PostingList::DeserializeFrom(bytes, &offset).ok());
}

TEST(PostingListSerializeTest, ImageLeadsWithVersionByte) {
  const auto original = PostingList::Build(MakePostings(16, 9));
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 2u);
}

TEST(PostingListSerializeTest, RejectsOtherFormatVersions) {
  const auto original = PostingList::Build(MakePostings(64, 10));
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  // v1 images were unversioned; any leading byte other than the current
  // version — in particular a would-be "1" — must be rejected loudly, not
  // misparsed.
  for (const uint8_t version : {0, 1, 3, 255}) {
    std::string tampered = bytes;
    tampered[0] = static_cast<char>(version);
    size_t offset = 0;
    const auto result = PostingList::DeserializeFrom(tampered, &offset);
    EXPECT_FALSE(result.ok()) << "version " << int{version};
  }
}

TEST(PostingListSerializeTest, RoundTripsBlockMaxDisabled) {
  PostingList::Options options;
  options.block_size = 8;
  options.enable_block_max = false;
  const auto original = PostingList::Build(MakePostings(100, 11), options);
  ASSERT_TRUE(original.ok());
  std::string bytes;
  original.value().SerializeTo(&bytes);
  size_t offset = 0;
  const auto loaded = PostingList::DeserializeFrom(bytes, &offset);
  ASSERT_TRUE(loaded.ok());
  ExpectListsEqual(original.value(), loaded.value());
  EXPECT_FALSE(loaded.value().options().enable_block_max);
}

TEST(PostingListSerializeTest, CorruptSkipStructureDetected) {
  PostingList::Options options;
  options.block_size = 8;
  const auto original = PostingList::Build(MakePostings(64, 12), options);
  ASSERT_TRUE(original.ok());
  std::string clean;
  original.value().SerializeTo(&clean);

  // Flip every single byte in turn; deserialization must either fail or
  // produce a structurally coherent list (a flipped payload impact byte,
  // say, is legitimately undetectable) — it must never crash or read out
  // of bounds (sanitizer builds make this an OOB probe). Header and skip
  // flips must be caught.
  size_t rejected = 0;
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string tampered = clean;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x55);
    size_t offset = 0;
    const auto result = PostingList::DeserializeFrom(tampered, &offset);
    if (!result.ok()) ++rejected;
  }
  EXPECT_GT(rejected, 0u);
}

/// Hand-builds a v2 image so each structural validator can be hit with a
/// surgically corrupted field (byte-flip fuzzing cannot steer varints).
std::string BuildImage(uint64_t count, uint64_t block_size, uint8_t flags,
                       const std::vector<std::array<uint64_t, 3>>& skips,
                       const std::string& payload) {
  std::string bytes;
  bytes.push_back(2);  // version
  PutVarint64(count, &bytes);
  const float max_score = 1.0f;
  uint32_t score_bits = 0;
  std::memcpy(&score_bits, &max_score, sizeof(score_bits));
  PutVarint32(score_bits, &bytes);
  PutVarint64(block_size, &bytes);
  bytes.push_back(static_cast<char>(flags));
  PutVarint64(skips.size(), &bytes);
  for (const auto& [last_item, offset, num_postings] : skips) {
    PutVarint32(static_cast<uint32_t>(last_item), &bytes);
    PutVarint64(offset, &bytes);
    PutVarint32(static_cast<uint32_t>(num_postings), &bytes);
    bytes.push_back(static_cast<char>(200));  // max_impact
  }
  PutVarint64(payload.size(), &bytes);
  bytes.append(payload);
  return bytes;
}

TEST(PostingListSerializeTest, StructuralValidatorsRejectBadImages) {
  // A coherent baseline: 4 postings in one block of size 8 — 4 one-byte
  // deltas then 4 impact bytes.
  const std::string payload("\x01\x01\x01\x01\x80\x90\xA0\xB0", 8);
  {
    const std::string good = BuildImage(4, 8, 3, {{4, 0, 4}}, payload);
    size_t offset = 0;
    ASSERT_TRUE(PostingList::DeserializeFrom(good, &offset).ok());
  }
  const struct {
    const char* label;
    std::string image;
  } cases[] = {
      {"posting count exceeds block_size",
       BuildImage(9, 8, 3, {{9, 0, 9}}, payload)},
      {"block too small for its impact bytes",
       BuildImage(4, 8, 3, {{4, 6, 4}}, payload)},
      {"skip offsets out of order",
       BuildImage(4, 8, 3, {{2, 6, 2}, {4, 0, 2}}, payload)},
      {"count sum mismatch", BuildImage(5, 8, 3, {{4, 0, 4}}, payload)},
      {"unknown flag bits", BuildImage(4, 8, 7, {{4, 0, 4}}, payload)},
      {"zero block_size", BuildImage(4, 0, 3, {{4, 0, 4}}, payload)},
  };
  for (const auto& test_case : cases) {
    size_t offset = 0;
    EXPECT_FALSE(PostingList::DeserializeFrom(test_case.image, &offset).ok())
        << test_case.label;
  }
}

}  // namespace
}  // namespace amici
