// The acceptance property of the snapshot subsystem: a reopened snapshot
// is the SAME engine, bit for bit. Every query — all six strategies,
// both match modes, plain/diverse/geo/pure-social — must return
// IDENTICAL items and IDENTICAL float scores on the restored twin, for
// bare engines and for 1-, 2- and 4-shard services; fresh after a save,
// after WAL-replayed ingest, and after merge compaction + resave.
//
// Why exact equality (not the tie-tolerant comparison of the sharded
// invariance suite) is the right bar: the twin runs the same algorithm
// code over restored state that is byte-identical where it matters —
// posting images are mapped verbatim, buckets/cells/rows copied exactly
// — so even tie-breaks must reproduce.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

constexpr AlgorithmId kAllStrategies[] = {
    AlgorithmId::kExhaustive,  AlgorithmId::kMergeScan,
    AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
    AlgorithmId::kHybrid,       AlgorithmId::kNra,
};

std::string TempDir(const std::string& name) {
  const std::string dir = "/tmp/amici_restart_test_" + name;
  const std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  return dir;
}

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 250;
  config.items_per_user = 4.0;
  config.num_tags = 150;
  config.geo_fraction = 0.4;
  config.seed = seed;
  return config;
}

/// Base query mix: plain blended, geo-filtered, and pure-social-feed
/// queries (the strategy/mode cross product is applied by the callers).
std::vector<SocialQuery> BaseQueries(const DatasetConfig& config) {
  Dataset view = GenerateDataset(config).value();
  QueryWorkloadConfig plain;
  plain.num_queries = 4;
  plain.seed = config.seed * 31 + 1;
  std::vector<SocialQuery> queries = GenerateQueries(view, plain).value();

  QueryWorkloadConfig geo;
  geo.num_queries = 2;
  geo.with_geo_filter = true;
  geo.radius_km = 30.0;
  geo.seed = config.seed * 31 + 2;
  const std::vector<SocialQuery> geo_queries =
      GenerateQueries(view, geo).value();
  for (const SocialQuery& query : geo_queries) {
    queries.push_back(query);
  }

  SocialQuery feed;
  feed.user = 7;
  feed.alpha = 1.0;
  feed.k = 8;
  queries.push_back(feed);
  return queries;
}

void ExpectIdenticalItems(const std::vector<ScoredItem>& want,
                          const std::vector<ScoredItem>& got,
                          const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].item, got[i].item) << label << " rank " << i;
    EXPECT_EQ(want[i].score, got[i].score) << label << " rank " << i;
  }
}

// --- Bare engine ---------------------------------------------------------

void ExpectEngineTwin(SocialSearchEngine* live, SocialSearchEngine* twin,
                      std::span<const SocialQuery> queries,
                      const std::string& phase) {
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const AlgorithmId algorithm : kAllStrategies) {
      for (const MatchMode mode : {MatchMode::kAny, MatchMode::kAll}) {
        SocialQuery query = queries[q];
        query.mode = mode;
        const std::string label =
            phase + " query " + std::to_string(q) + " algo " +
            std::to_string(static_cast<int>(algorithm)) +
            (mode == MatchMode::kAll ? " all" : " any");
        const auto want = live->Query(query, algorithm);
        const auto got = twin->Query(query, algorithm);
        ASSERT_EQ(want.ok(), got.ok())
            << label << ": " << want.status().ToString() << " vs "
            << got.status().ToString();
        if (!want.ok()) continue;
        ExpectIdenticalItems(want.value().items, got.value().items, label);
      }
    }
    // Owner-diversified variant under the default strategy.
    const auto want = live->QueryDiverse(queries[q], 2, AlgorithmId::kHybrid);
    const auto got = twin->QueryDiverse(queries[q], 2, AlgorithmId::kHybrid);
    ASSERT_EQ(want.ok(), got.ok());
    if (want.ok()) {
      ExpectIdenticalItems(want.value().items, got.value().items,
                           phase + " diverse query " + std::to_string(q));
    }
  }
}

TEST(SnapshotRestartTest, EngineTwinMatchesAcrossStrategiesAndModes) {
  const DatasetConfig config = TestConfig(5);
  Dataset dataset = GenerateDataset(config).value();
  auto live = SocialSearchEngine::Build(std::move(dataset.graph),
                                        std::move(dataset.store),
                                        SocialSearchEngine::Options());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  const std::vector<SocialQuery> queries = BaseQueries(config);

  const std::string dir = TempDir("engine");
  const auto report = live.value()->SaveSnapshot(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().incremental);
  EXPECT_GT(report.value().segments_written, 0u);

  auto twin = SocialSearchEngine::OpenSnapshot(
      dir, SocialSearchEngine::Options());
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  EXPECT_EQ(twin.value()->store().num_items(),
            live.value()->store().num_items());
  ExpectEngineTwin(live.value().get(), twin.value().get(), queries, "fresh");

  // Ingest into BOTH, compact only the twin: queries must still agree
  // (compaction invariance composed with restore equivalence).
  Rng rng(99);
  for (int i = 0; i < 25; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(config.num_users));
    item.tags = {static_cast<TagId>(rng.UniformIndex(config.num_tags))};
    item.quality = static_cast<float>(rng.UniformDouble());
    const auto live_id = live.value()->AddItem(item);
    const auto twin_id = twin.value()->AddItem(item);
    ASSERT_TRUE(live_id.ok() && twin_id.ok());
    EXPECT_EQ(live_id.value(), twin_id.value());
  }
  ASSERT_TRUE(twin.value()->Compact().ok());
  ExpectEngineTwin(live.value().get(), twin.value().get(), queries,
                   "post-ingest");
}

TEST(SnapshotRestartTest, EngineRejectsServiceRootDirectory) {
  const DatasetConfig config = TestConfig(6);
  Dataset dataset = GenerateDataset(config).value();
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  ASSERT_TRUE(service.ok());
  const std::string dir = TempDir("engine_vs_service");
  ASSERT_TRUE(service.value()->SaveSnapshot(dir).ok());
  const auto engine = SocialSearchEngine::OpenSnapshot(
      dir, SocialSearchEngine::Options());
  EXPECT_FALSE(engine.ok());
}

// --- Services ------------------------------------------------------------

std::unique_ptr<SearchService> BuildService(const DatasetConfig& config,
                                            size_t num_shards) {
  Dataset dataset = GenerateDataset(config).value();
  if (num_shards == 1) {
    auto service = LocalSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store));
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }
  ShardedSearchService::Options options;
  options.num_shards = num_shards;
  auto service = ShardedSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

std::unique_ptr<SearchService> OpenService(const std::string& dir,
                                           size_t num_shards) {
  if (num_shards == 1) {
    auto twin =
        LocalSearchService::OpenSnapshot(dir, LocalSearchService::Options());
    EXPECT_TRUE(twin.ok()) << twin.status().ToString();
    return twin.ok() ? std::move(twin).value() : nullptr;
  }
  auto twin = ShardedSearchService::OpenSnapshot(
      dir, ShardedSearchService::Options());
  EXPECT_TRUE(twin.ok()) << twin.status().ToString();
  return twin.ok() ? std::move(twin).value() : nullptr;
}

/// The full request cross product: every base query under every strategy
/// hint and both match modes, plus diverse variants.
std::vector<SearchRequest> BuildRequests(const DatasetConfig& config) {
  std::vector<SearchRequest> requests;
  for (const SocialQuery& base : BaseQueries(config)) {
    for (const MatchMode mode : {MatchMode::kAny, MatchMode::kAll}) {
      for (const AlgorithmId algorithm : kAllStrategies) {
        SearchRequest request;
        request.query = base;
        request.query.mode = mode;
        request.algorithm = algorithm;
        requests.push_back(request);
      }
    }
    SearchRequest diverse;
    diverse.query = base;
    diverse.max_per_owner = 2;
    requests.push_back(diverse);
  }
  return requests;
}

void ExpectServiceTwin(SearchService* live, SearchService* twin,
                       std::span<const SearchRequest> requests,
                       const std::string& phase) {
  ASSERT_EQ(live->num_items(), twin->num_items()) << phase;
  ASSERT_EQ(live->num_users(), twin->num_users()) << phase;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::string label = phase + " request " + std::to_string(i);
    const auto want = live->Search(requests[i]);
    const auto got = twin->Search(requests[i]);
    ASSERT_EQ(want.ok(), got.ok())
        << label << ": " << want.status().ToString() << " vs "
        << got.status().ToString();
    if (!want.ok()) {
      EXPECT_EQ(want.status().code(), got.status().code()) << label;
      continue;
    }
    ExpectIdenticalItems(want.value().items, got.value().items, label);
  }
}

TEST(SnapshotRestartTest, ServiceTwinsAcrossShardCounts) {
  for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(num_shards));
    const DatasetConfig config = TestConfig(17 + num_shards);
    auto live = BuildService(config, num_shards);
    const std::vector<SearchRequest> requests = BuildRequests(config);
    const std::string dir =
        TempDir("service_" + std::to_string(num_shards));

    // Phase 1: freshly saved snapshot, empty WAL.
    const auto report = live->SaveSnapshot(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    {
      auto twin = OpenService(dir, num_shards);
      ASSERT_NE(twin, nullptr);
      EXPECT_EQ(twin->num_shards(), num_shards);
      ExpectServiceTwin(live.get(), twin.get(), requests, "fresh");
    }

    // Phase 2: mutate the LIVE service only. The mutations land in the
    // attached WAL, so a twin opened from the same directory must catch
    // up purely by replaying the tail.
    Rng rng(config.seed * 3 + 1);
    std::vector<Item> batch;
    for (int i = 0; i < 30; ++i) {
      Item item;
      item.owner = static_cast<UserId>(rng.UniformIndex(config.num_users));
      item.tags = {static_cast<TagId>(rng.UniformIndex(config.num_tags))};
      if (rng.Bernoulli(0.3)) {
        item.tags.push_back(
            static_cast<TagId>(rng.UniformIndex(config.num_tags)));
      }
      item.quality = static_cast<float>(rng.UniformDouble());
      if (rng.Bernoulli(0.4)) {
        item.has_geo = true;
        item.latitude = static_cast<float>(rng.UniformDouble() - 0.5);
        item.longitude = static_cast<float>(rng.UniformDouble() - 0.5);
      }
      batch.push_back(item);
    }
    ASSERT_TRUE(
        live->AddItems(std::span<const Item>(batch.data(), 15)).ok());
    for (size_t i = 15; i < batch.size(); ++i) {
      ASSERT_TRUE(live->AddItem(batch[i]).ok());
    }
    for (int flip = 0; flip < 4; ++flip) {
      const UserId u =
          static_cast<UserId>(rng.UniformIndex(config.num_users));
      const UserId v =
          static_cast<UserId>(rng.UniformIndex(config.num_users));
      if (u == v) continue;
      (void)live->AddFriendship(u, v);
    }
    {
      persist::WalReplayStats stats;
      std::unique_ptr<SearchService> twin;
      if (num_shards == 1) {
        auto opened = LocalSearchService::OpenSnapshot(
            dir, LocalSearchService::Options(),
            persist::SnapshotOpenOptions(), &stats);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        twin = std::move(opened).value();
      } else {
        auto opened = ShardedSearchService::OpenSnapshot(
            dir, ShardedSearchService::Options(),
            persist::SnapshotOpenOptions(), &stats);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        twin = std::move(opened).value();
      }
      EXPECT_GT(stats.records_applied, 0u) << "tail was not replayed";
      ExpectServiceTwin(live.get(), twin.get(), requests, "wal-replay");
    }

    // Phase 3: fold the tail into the indexes (merge compaction), save
    // again — the second generation — and reopen.
    ASSERT_TRUE(live->Compact().ok());
    EXPECT_EQ(live->unindexed_items(), 0u);
    const auto second = live->SaveSnapshot(dir);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_GT(second.value().generation, report.value().generation);
    {
      auto twin = OpenService(dir, num_shards);
      ASSERT_NE(twin, nullptr);
      EXPECT_EQ(twin->unindexed_items(), 0u);
      ExpectServiceTwin(live.get(), twin.get(), requests, "post-compact");
    }
  }
}

TEST(SnapshotRestartTest, ShardCountMismatchesAreRejected) {
  const DatasetConfig config = TestConfig(23);
  auto sharded = BuildService(config, 2);
  const std::string dir = TempDir("mismatch");
  ASSERT_TRUE(sharded->SaveSnapshot(dir).ok());

  // A 2-shard root is not a local snapshot...
  EXPECT_FALSE(
      LocalSearchService::OpenSnapshot(dir, LocalSearchService::Options())
          .ok());
  // ...but the sharded opener takes its shard count from the manifest.
  auto twin = ShardedSearchService::OpenSnapshot(
      dir, ShardedSearchService::Options());
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  EXPECT_EQ(twin.value()->num_shards(), 2u);

  // The layout is uniform, so the sharded opener handles a 1-shard
  // (local) root too — it simply becomes a single-shard deployment.
  auto local = BuildService(config, 1);
  const std::string local_dir = TempDir("mismatch_local");
  ASSERT_TRUE(local->SaveSnapshot(local_dir).ok());
  auto one = ShardedSearchService::OpenSnapshot(
      local_dir, ShardedSearchService::Options());
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one.value()->num_shards(), 1u);
  EXPECT_EQ(one.value()->num_items(), local->num_items());
}

TEST(SnapshotRestartTest, ReopenedServiceKeepsLoggingAndReopens) {
  // save -> reopen -> mutate the TWIN -> reopen again: the reopened
  // service's attached WAL must capture the second round of mutations.
  const DatasetConfig config = TestConfig(31);
  auto live = BuildService(config, 2);
  const std::string dir = TempDir("relog");
  ASSERT_TRUE(live->SaveSnapshot(dir).ok());

  auto first = OpenService(dir, 2);
  ASSERT_NE(first, nullptr);
  Item item;
  item.owner = 3;
  item.tags = {TagId{1}, TagId{4}};
  item.quality = 0.75f;
  const auto id = first->AddItem(item);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(first->AddFriendship(2, 9).ok());

  auto second = OpenService(dir, 2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->num_items(), first->num_items());
  EXPECT_EQ(second->OwnerOf(id.value()), 3u);
  const auto friends = second->FriendsOf(2);
  EXPECT_TRUE(std::find(friends.begin(), friends.end(), UserId{9}) !=
              friends.end());
}

}  // namespace
}  // namespace amici
