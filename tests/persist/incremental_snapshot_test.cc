// Incremental saves: a resave after compaction must emit ONLY the lists
// the tail actually touched (the compaction horizon delta is the dirty
// set — no dirty-bit bookkeeping anywhere), supersede them via segment
// generations, retire dead files after commit, and still reopen to a
// bit-identical engine.

#include <dirent.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "persist/fs_util.h"
#include "persist/manifest.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = "/tmp/amici_incremental_test_" + name;
  const std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  return dir;
}

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 200;
  config.items_per_user = 5.0;
  config.num_tags = 120;
  config.geo_fraction = 0.3;
  config.seed = seed;
  return config;
}

std::set<std::string> ListDir(const std::string& dir) {
  std::set<std::string> names;
  DIR* handle = ::opendir(dir.c_str());
  EXPECT_NE(handle, nullptr) << dir;
  if (handle == nullptr) return names;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.insert(name);
  }
  ::closedir(handle);
  return names;
}

Result<std::unique_ptr<SocialSearchEngine>> BuildEngine(
    const DatasetConfig& config) {
  Dataset dataset = GenerateDataset(config).value();
  return SocialSearchEngine::Build(std::move(dataset.graph),
                                   std::move(dataset.store),
                                   SocialSearchEngine::Options());
}

void ExpectTwinEqual(SocialSearchEngine* live, const std::string& dir,
                     const DatasetConfig& config, const std::string& label) {
  auto twin =
      SocialSearchEngine::OpenSnapshot(dir, SocialSearchEngine::Options());
  ASSERT_TRUE(twin.ok()) << label << ": " << twin.status().ToString();
  ASSERT_EQ(twin.value()->store().num_items(), live->store().num_items())
      << label;

  Dataset view = GenerateDataset(config).value();
  QueryWorkloadConfig workload;
  workload.num_queries = 6;
  workload.seed = config.seed * 17 + 3;
  const std::vector<SocialQuery> queries =
      GenerateQueries(view, workload).value();
  for (const SocialQuery& query : queries) {
    for (const AlgorithmId algorithm :
         {AlgorithmId::kExhaustive, AlgorithmId::kMergeScan,
          AlgorithmId::kHybrid, AlgorithmId::kNra}) {
      const auto want = live->Query(query, algorithm);
      const auto got = twin.value()->Query(query, algorithm);
      ASSERT_EQ(want.ok(), got.ok()) << label;
      if (!want.ok()) continue;
      ASSERT_EQ(want.value().items.size(), got.value().items.size())
          << label;
      for (size_t i = 0; i < want.value().items.size(); ++i) {
        EXPECT_EQ(want.value().items[i].item, got.value().items[i].item)
            << label << " rank " << i;
        EXPECT_EQ(want.value().items[i].score, got.value().items[i].score)
            << label << " rank " << i;
      }
    }
  }
}

TEST(IncrementalSnapshotTest, ResaveEmitsOnlyTouchedLists) {
  const DatasetConfig config = TestConfig(41);
  auto engine = BuildEngine(config);
  ASSERT_TRUE(engine.ok());
  const std::string dir = TempDir("touched");

  const auto full = engine.value()->SaveSnapshot(dir);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full.value().incremental);
  const uint64_t full_lists = full.value().lists_written;
  ASSERT_GT(full_lists, 10u);

  // A small tail confined to TWO tags and THREE owners; after compaction
  // folds it in, the dirty set is exactly those keys.
  Rng rng(1);
  for (int i = 0; i < 12; ++i) {
    Item item;
    item.owner = static_cast<UserId>(3 + (i % 3));
    item.tags = {static_cast<TagId>(5 + (i % 2))};
    item.quality = static_cast<float>(rng.UniformDouble());
    ASSERT_TRUE(engine.value()->AddItem(item).ok());
  }
  ASSERT_TRUE(engine.value()->Compact().ok());

  const auto incremental = engine.value()->SaveSnapshot(dir);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  EXPECT_TRUE(incremental.value().incremental);
  EXPECT_EQ(incremental.value().generation, full.value().generation + 1);
  // 2 posting lists + 3 social buckets — far below a full rewrite. Leave
  // slack for grid cells touched by chance, but the bound must prove the
  // save did not degenerate to full.
  EXPECT_LE(incremental.value().lists_written, 8u);
  EXPECT_LT(incremental.value().bytes_written, full.value().bytes_written);

  ExpectTwinEqual(engine.value().get(), dir, config, "incremental");
}

TEST(IncrementalSnapshotTest, RetirementKeepsExactlyTheLiveFiles) {
  const DatasetConfig config = TestConfig(43);
  auto engine = BuildEngine(config);
  ASSERT_TRUE(engine.ok());
  const std::string dir = TempDir("retire");
  const auto first = engine.value()->SaveSnapshot(dir);
  ASSERT_TRUE(first.ok());

  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    Item item;
    item.owner = static_cast<UserId>(rng.UniformIndex(config.num_users));
    item.tags = {static_cast<TagId>(rng.UniformIndex(config.num_tags))};
    item.quality = static_cast<float>(rng.UniformDouble());
    ASSERT_TRUE(engine.value()->AddItem(item).ok());
  }
  ASSERT_TRUE(engine.value()->Compact().ok());
  const auto second = engine.value()->SaveSnapshot(dir);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().incremental);

  // Directory contents == CURRENT + the committed manifest + its live
  // segments, nothing else: the superseded manifest is gone, generation-1
  // segments survive only because later generations still reference
  // none/some of their keys — i.e. they are in the manifest.
  const auto manifest = persist::LoadCurrentManifest(dir);
  ASSERT_TRUE(manifest.ok());
  std::set<std::string> expected = {
      "CURRENT", persist::ManifestFileName(second.value().generation)};
  for (const auto& info : manifest.value().segments) {
    expected.insert(info.file);
  }
  EXPECT_EQ(ListDir(dir), expected);
  EXPECT_FALSE(persist::FileExists(persist::JoinPath(
      dir, persist::ManifestFileName(first.value().generation))));

  // The carried-over generation-1 postings segment must still be listed
  // (only SOME lists were superseded).
  bool has_gen1_postings = false;
  for (const auto& info : manifest.value().segments) {
    if (info.kind == persist::SegmentKind::kPostings &&
        info.generation == first.value().generation) {
      has_gen1_postings = true;
    }
  }
  EXPECT_TRUE(has_gen1_postings);
}

TEST(IncrementalSnapshotTest, UnchangedEngineResavesNothing) {
  const DatasetConfig config = TestConfig(47);
  auto engine = BuildEngine(config);
  ASSERT_TRUE(engine.ok());
  const std::string dir = TempDir("nochange");
  ASSERT_TRUE(engine.value()->SaveSnapshot(dir).ok());

  const auto resave = engine.value()->SaveSnapshot(dir);
  ASSERT_TRUE(resave.ok()) << resave.status().ToString();
  EXPECT_TRUE(resave.value().incremental);
  EXPECT_EQ(resave.value().lists_written, 0u);
  EXPECT_EQ(resave.value().segments_written, 0u);
  EXPECT_EQ(resave.value().bytes_written, 0u);

  ExpectTwinEqual(engine.value().get(), dir, config, "nochange");
}

TEST(IncrementalSnapshotTest, ForeignBaseForcesFullSave) {
  // Saving a DIFFERENT corpus into an existing snapshot directory cannot
  // reuse its segments: the save must fall back to full and the
  // directory must come back as the new engine.
  const DatasetConfig config_a = TestConfig(51);
  DatasetConfig config_b = TestConfig(53);
  config_b.num_users = 90;  // different user universe
  auto engine_a = BuildEngine(config_a);
  auto engine_b = BuildEngine(config_b);
  ASSERT_TRUE(engine_a.ok() && engine_b.ok());

  const std::string dir = TempDir("foreign");
  const auto first = engine_a.value()->SaveSnapshot(dir);
  ASSERT_TRUE(first.ok());
  const auto second = engine_b.value()->SaveSnapshot(dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.value().incremental);
  EXPECT_GT(second.value().generation, first.value().generation);

  ExpectTwinEqual(engine_b.value().get(), dir, config_b, "foreign");
}

}  // namespace
}  // namespace amici
