// The graph segment's overlay tail: a snapshot taken while the proximity
// service holds UNFOLDED delta-overlay rows must (a) restore to the same
// adjacency, (b) keep legacy pure-CSR images byte-identical, and (c)
// carry the patch through a service save → reopen round trip without
// forcing a fold.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_generators.h"
#include "gtest/gtest.h"
#include "persist/snapshot.h"
#include "proximity_service/delta_overlay_graph.h"
#include "service/local_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

void ExpectSameAdjacency(const SocialGraph& got, const SocialGraph& want) {
  ASSERT_EQ(got.num_users(), want.num_users());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  for (UserId u = 0; u < want.num_users(); ++u) {
    const auto g = got.Friends(u);
    const auto w = want.Friends(u);
    ASSERT_EQ(g.size(), w.size()) << "user " << u;
    for (size_t i = 0; i < w.size(); ++i) {
      ASSERT_EQ(g[i], w[i]) << "user " << u << " slot " << i;
    }
  }
}

SocialGraph OverlaidGraph(size_t num_users, int edits, uint64_t seed) {
  Rng rng(seed);
  SocialGraph base = GenerateErdosRenyi(num_users, 4.0, &rng);
  DeltaOverlayGraph delta(base, 2);
  for (int i = 0; i < edits; ++i) {
    const UserId u = static_cast<UserId>(rng.UniformIndex(num_users));
    UserId v = static_cast<UserId>(rng.UniformIndex(num_users));
    if (u == v) v = (v + 1) % num_users;
    const bool insert = !delta.Compose().HasEdge(u, v);
    delta.ApplyHalf(u, v, insert);
    delta.ApplyHalf(v, u, insert);
  }
  return delta.Compose();
}

TEST(GraphOverlayPersistTest, CodecRoundTripsOverlayUnfolded) {
  const SocialGraph graph = OverlaidGraph(60, 25, 17);
  ASSERT_TRUE(graph.has_overlay());
  ASSERT_GT(graph.overlay()->num_rows(), 0u);

  const std::string payload = persist::BuildGraphSegmentPayload(graph);
  const auto restored = persist::ParseGraphSegmentPayload(payload);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // The patch arrives as a patch (not silently flattened) and the
  // composed adjacency is identical.
  EXPECT_TRUE(restored.value().has_overlay());
  EXPECT_EQ(restored.value().overlay()->num_rows(),
            graph.overlay()->num_rows());
  ExpectSameAdjacency(restored.value(), graph);
}

TEST(GraphOverlayPersistTest, PatchFreeImageIsByteIdenticalToLegacy) {
  const SocialGraph graph = OverlaidGraph(60, 25, 29);
  const SocialGraph flat = graph.Flatten();
  ASSERT_FALSE(flat.has_overlay());

  // A patch-free graph writes the legacy pure-CSR image — the flattened
  // twin and a from-scratch CSR of the same adjacency agree byte for
  // byte, and an overlaid graph's payload differs only by the tail.
  const std::string flat_payload = persist::BuildGraphSegmentPayload(flat);
  const std::string overlaid_payload =
      persist::BuildGraphSegmentPayload(graph);
  EXPECT_GT(overlaid_payload.size(), flat_payload.size());

  const auto legacy = persist::ParseGraphSegmentPayload(flat_payload);
  ASSERT_TRUE(legacy.ok());
  EXPECT_FALSE(legacy.value().has_overlay());
  ExpectSameAdjacency(legacy.value(), graph);
}

TEST(GraphOverlayPersistTest, CorruptTailIsRejected) {
  const SocialGraph graph = OverlaidGraph(40, 12, 41);
  ASSERT_TRUE(graph.has_overlay());
  std::string payload = persist::BuildGraphSegmentPayload(graph);

  // Truncating mid-tail or appending trailing junk must fail parsing,
  // not silently produce a graph.
  EXPECT_FALSE(
      persist::ParseGraphSegmentPayload(
          std::string_view(payload.data(), payload.size() - 3))
          .ok());
  std::string padded = payload + std::string(4, '\0');
  EXPECT_FALSE(persist::ParseGraphSegmentPayload(padded).ok());
}

TEST(GraphOverlayPersistTest, ServiceSnapshotCarriesUnfoldedOverlay) {
  DatasetConfig config = SmallDataset();
  config.num_users = 120;
  config.items_per_user = 3.0;
  config.seed = 77;
  Dataset dataset = GenerateDataset(config).value();

  auto live = LocalSearchService::Build(std::move(dataset.graph),
                                        std::move(dataset.store));
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Churn friendships so the provider holds an unfolded patch (the
  // default fold policy won't fire at this scale), then snapshot.
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    const UserId u = static_cast<UserId>(rng.UniformIndex(config.num_users));
    UserId v = static_cast<UserId>(rng.UniformIndex(config.num_users));
    if (u == v) v = (v + 1) % config.num_users;
    const bool adding = !live.value()->proximity_provider()
                             ->Acquire()
                             .graph->HasEdge(u, v);
    ASSERT_TRUE((adding ? live.value()->AddFriendship(u, v)
                        : live.value()->RemoveFriendship(u, v))
                    .ok());
  }
  ASSERT_GT(live.value()->proximity_stats().overlay_rows, 0u);

  const std::string dir = "/tmp/amici_graph_overlay_persist_test";
  (void)std::system(("rm -rf " + dir).c_str());
  ASSERT_TRUE(live.value()->SaveSnapshot(dir).ok());

  auto twin = LocalSearchService::OpenSnapshot(
      dir, LocalSearchService::Options());
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();

  // The patch survived the round trip unfolded...
  EXPECT_GT(twin.value()->proximity_stats().overlay_rows, 0u);
  // ... and the restored adjacency + queries match the live service.
  for (UserId user = 0; user < 20; ++user) {
    EXPECT_EQ(live.value()->FriendsOf(user), twin.value()->FriendsOf(user))
        << "user " << user;
  }
  for (int i = 0; i < 4; ++i) {
    SearchRequest feed;
    feed.query.user = static_cast<UserId>(rng.UniformIndex(config.num_users));
    feed.query.alpha = 1.0;
    feed.query.k = 8;
    const auto want = live.value()->Search(feed);
    const auto got = twin.value()->Search(feed);
    ASSERT_EQ(want.ok(), got.ok());
    if (!want.ok()) continue;
    ASSERT_EQ(want.value().items.size(), got.value().items.size());
    for (size_t r = 0; r < want.value().items.size(); ++r) {
      EXPECT_EQ(want.value().items[r].item, got.value().items[r].item);
      EXPECT_EQ(want.value().items[r].score, got.value().items[r].score);
    }
  }

  // A fold on the reopened twin is still just a representation change.
  EXPECT_GT(twin.value()->proximity_provider()->FoldOverlay(), 0u);
  EXPECT_EQ(twin.value()->proximity_stats().overlay_rows, 0u);
  for (UserId user = 0; user < 20; ++user) {
    EXPECT_EQ(live.value()->FriendsOf(user), twin.value()->FriendsOf(user));
  }
}

}  // namespace
}  // namespace amici
