// Segment + manifest layer: byte-exact round trips, the atomic CURRENT
// commit, and — the property everything above relies on — that NO
// corrupted byte (payload, header, or manifest) goes undetected.

#include "persist/segment.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "persist/fs_util.h"
#include "persist/manifest.h"
#include "util/rng.h"

namespace amici {
namespace persist {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = "/tmp/amici_segment_test_" + name;
  std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  EXPECT_TRUE(EnsureDir(dir).ok());
  return dir;
}

std::string RandomPayload(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::string payload(size, '\0');
  for (char& c : payload) c = static_cast<char>(rng.UniformIndex(256));
  return payload;
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(SegmentTest, RoundTripsPayload) {
  const std::string dir = TempDir("roundtrip");
  const std::string path = JoinPath(dir, "postings-000001.seg");
  const std::string payload = RandomPayload(10000, 1);
  ASSERT_TRUE(WriteSegmentFile(path, SegmentKind::kPostings, payload).ok());

  const auto segment = MappedSegment::Open(path, SegmentKind::kPostings);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_EQ(segment.value()->kind(), SegmentKind::kPostings);
  EXPECT_EQ(segment.value()->payload(), payload);
}

TEST(SegmentTest, RejectsKindMismatch) {
  const std::string dir = TempDir("kind");
  const std::string path = JoinPath(dir, "items-000001.seg");
  ASSERT_TRUE(
      WriteSegmentFile(path, SegmentKind::kItems, RandomPayload(64, 2)).ok());
  const auto segment = MappedSegment::Open(path, SegmentKind::kGraph);
  EXPECT_FALSE(segment.ok());
}

TEST(SegmentTest, DetectsEveryPayloadBitFlip) {
  const std::string dir = TempDir("payload_flip");
  const std::string payload = RandomPayload(512, 3);
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const std::string path =
        JoinPath(dir, "social-" + std::to_string(trial) + ".seg");
    ASSERT_TRUE(WriteSegmentFile(path, SegmentKind::kSocial, payload).ok());
    FlipByte(path, kSegmentHeaderSize + rng.UniformIndex(payload.size()));
    const auto segment = MappedSegment::Open(path, SegmentKind::kSocial);
    ASSERT_FALSE(segment.ok()) << "trial " << trial;
    EXPECT_EQ(segment.status().code(), StatusCode::kCorruption)
        << segment.status().ToString();
  }
}

TEST(SegmentTest, DetectsHeaderBitFlip) {
  const std::string dir = TempDir("header_flip");
  for (size_t offset = 0; offset < kSegmentHeaderSize; ++offset) {
    const std::string path =
        JoinPath(dir, "grid-" + std::to_string(offset) + ".seg");
    ASSERT_TRUE(
        WriteSegmentFile(path, SegmentKind::kGrid, RandomPayload(100, 5))
            .ok());
    FlipByte(path, offset);
    EXPECT_FALSE(MappedSegment::Open(path, SegmentKind::kGrid).ok())
        << "header byte " << offset << " flipped undetected";
  }
}

TEST(SegmentTest, SkippingChecksumStillValidatesHeader) {
  const std::string dir = TempDir("lazy");
  const std::string path = JoinPath(dir, "items-000001.seg");
  const std::string payload = RandomPayload(256, 6);
  ASSERT_TRUE(WriteSegmentFile(path, SegmentKind::kItems, payload).ok());
  const auto lazy =
      MappedSegment::Open(path, SegmentKind::kItems, /*verify_checksum=*/false);
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(lazy.value()->payload(), payload);
}

Manifest SampleManifest() {
  Manifest manifest;
  manifest.generation = 7;
  manifest.num_users = 1000;
  manifest.num_items = 4096;
  manifest.index_horizon = 4000;
  manifest.num_tags = 200;
  manifest.graph_version = 12;
  manifest.has_impact_ordered = 1;
  manifest.has_grid = 1;
  manifest.grid_cell_size_deg = 0.25;
  manifest.num_shards = 0;
  SegmentInfo info;
  info.kind = SegmentKind::kPostings;
  info.generation = 7;
  info.file = "postings-000007.seg";
  info.payload_bytes = 12345;
  info.checksum = 0xdeadbeefcafef00dULL;
  info.entries = 200;
  manifest.segments.push_back(info);
  info.kind = SegmentKind::kItems;
  info.file = "items-000003.seg";
  info.generation = 3;
  manifest.segments.push_back(info);
  return manifest;
}

void ExpectManifestsEqual(const Manifest& a, const Manifest& b) {
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.num_users, b.num_users);
  EXPECT_EQ(a.num_items, b.num_items);
  EXPECT_EQ(a.index_horizon, b.index_horizon);
  EXPECT_EQ(a.num_tags, b.num_tags);
  EXPECT_EQ(a.graph_version, b.graph_version);
  EXPECT_EQ(a.has_impact_ordered, b.has_impact_ordered);
  EXPECT_EQ(a.has_grid, b.has_grid);
  EXPECT_EQ(a.grid_cell_size_deg, b.grid_cell_size_deg);
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.wal_file, b.wal_file);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].kind, b.segments[i].kind);
    EXPECT_EQ(a.segments[i].generation, b.segments[i].generation);
    EXPECT_EQ(a.segments[i].file, b.segments[i].file);
    EXPECT_EQ(a.segments[i].payload_bytes, b.segments[i].payload_bytes);
    EXPECT_EQ(a.segments[i].checksum, b.segments[i].checksum);
    EXPECT_EQ(a.segments[i].entries, b.segments[i].entries);
  }
}

TEST(ManifestTest, SerializeParseRoundTrips) {
  const Manifest manifest = SampleManifest();
  const auto parsed = Manifest::Parse(manifest.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectManifestsEqual(manifest, parsed.value());
}

TEST(ManifestTest, CommitCurrentIsTheCommitPoint) {
  const std::string dir = TempDir("commit");
  Manifest manifest = SampleManifest();
  ASSERT_TRUE(WriteManifestFile(dir, manifest).ok());
  // Written but not committed: the directory has no current snapshot.
  EXPECT_FALSE(LoadCurrentManifest(dir).ok());

  ASSERT_TRUE(CommitCurrent(dir, manifest.generation).ok());
  const auto loaded = LoadCurrentManifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectManifestsEqual(manifest, loaded.value());

  // A newer generation replaces it atomically; the old manifest file is
  // still readable (retirement is a separate, post-commit step).
  manifest.generation = 8;
  manifest.num_items = 5000;
  ASSERT_TRUE(WriteManifestFile(dir, manifest).ok());
  ASSERT_TRUE(CommitCurrent(dir, 8).ok());
  const auto reloaded = LoadCurrentManifest(dir);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().generation, 8u);
  EXPECT_TRUE(FileExists(JoinPath(dir, ManifestFileName(7))));
}

TEST(ManifestTest, DetectsManifestBitFlips) {
  const std::string dir = TempDir("manifest_flip");
  const Manifest manifest = SampleManifest();
  ASSERT_TRUE(WriteManifestFile(dir, manifest).ok());
  ASSERT_TRUE(CommitCurrent(dir, manifest.generation).ok());
  const std::string path =
      JoinPath(dir, ManifestFileName(manifest.generation));
  const size_t size = manifest.Serialize().size();
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    ASSERT_TRUE(WriteManifestFile(dir, manifest).ok());
    FlipByte(path, rng.UniformIndex(size));
    const auto loaded = LoadCurrentManifest(dir);
    ASSERT_FALSE(loaded.ok()) << "trial " << trial;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << loaded.status().ToString();
  }
}

}  // namespace
}  // namespace persist
}  // namespace amici
