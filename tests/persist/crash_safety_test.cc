// Crash and corruption drills for whole snapshot directories: a torn WAL
// tail must reopen to exactly the committed prefix, while ANY flipped bit
// in a segment or manifest must be refused loudly — never absorbed into
// a silently-wrong index.

#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "persist/fs_util.h"
#include "persist/manifest.h"
#include "persist/segment.h"
#include "persist/wal.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "workload/dataset_generator.h"

namespace amici {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = "/tmp/amici_crash_test_" + name;
  const std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());
  return dir;
}

DatasetConfig TestConfig(uint64_t seed) {
  DatasetConfig config = SmallDataset();
  config.num_users = 120;
  config.items_per_user = 3.0;
  config.num_tags = 80;
  config.seed = seed;
  return config;
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

uint64_t FileSize(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(file.good()) << path;
  return static_cast<uint64_t>(file.tellg());
}

Item SimpleItem(UserId owner, TagId tag, float quality) {
  Item item;
  item.owner = owner;
  item.tags = {tag};
  item.quality = quality;
  return item;
}

TEST(CrashSafetyTest, TruncatedWalTailReopensToCommittedPrefix) {
  const DatasetConfig config = TestConfig(3);
  Dataset dataset = GenerateDataset(config).value();
  auto live = LocalSearchService::Build(std::move(dataset.graph),
                                        std::move(dataset.store));
  ASSERT_TRUE(live.ok());
  const size_t base_items = live.value()->num_items();
  const std::string dir = TempDir("torn_wal");
  const auto report = live.value()->SaveSnapshot(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Five committed single-item appends (one WAL record each, fdatasync'd
  // per batch)...
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(live.value()
                    ->AddItem(SimpleItem(static_cast<UserId>(i), 2,
                                         0.25f + 0.1f * i))
                    .ok());
  }
  // ...then the crash: the last record loses its final 3 bytes.
  const std::string wal_path = persist::JoinPath(
      dir, persist::WalFileName(report.value().generation));
  const uint64_t size = FileSize(wal_path);
  ASSERT_EQ(::truncate(wal_path.c_str(), static_cast<off_t>(size - 3)), 0);

  persist::WalReplayStats stats;
  auto twin = LocalSearchService::OpenSnapshot(
      dir, LocalSearchService::Options(), persist::SnapshotOpenOptions(),
      &stats);
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.records_applied, 4u);
  EXPECT_EQ(twin.value()->num_items(), base_items + 4);
  // The restored service is live: the lost item can simply be re-added,
  // and the reattached WAL (truncated past the tear) keeps logging.
  const auto readd = twin.value()->AddItem(SimpleItem(4, 2, 0.65f));
  ASSERT_TRUE(readd.ok()) << readd.status().ToString();
  EXPECT_EQ(readd.value(), base_items + 4);

  auto again = LocalSearchService::OpenSnapshot(
      dir, LocalSearchService::Options());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value()->num_items(), base_items + 5);
}

TEST(CrashSafetyTest, BitFlippedSegmentPayloadIsRejected) {
  const DatasetConfig config = TestConfig(7);
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store),
                                          SocialSearchEngine::Options());
  ASSERT_TRUE(engine.ok());
  const std::string dir = TempDir("segment_flip");
  ASSERT_TRUE(engine.value()->SaveSnapshot(dir).ok());

  const auto manifest = persist::LoadCurrentManifest(dir);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest.value().segments.empty());
  // Flip one payload byte in EVERY segment kind in turn; each flip alone
  // must fail the open with a Corruption error naming a checksum problem.
  Rng rng(11);
  for (const persist::SegmentInfo& info : manifest.value().segments) {
    const std::string path = persist::JoinPath(dir, info.file);
    const size_t offset = persist::kSegmentHeaderSize +
                          rng.UniformIndex(static_cast<size_t>(
                              std::max<uint64_t>(info.payload_bytes, 1)));
    FlipByte(path, offset);
    const auto twin = SocialSearchEngine::OpenSnapshot(
        dir, SocialSearchEngine::Options());
    ASSERT_FALSE(twin.ok()) << info.file << " flip went undetected";
    EXPECT_EQ(twin.status().code(), StatusCode::kCorruption)
        << twin.status().ToString();
    FlipByte(path, offset);  // restore for the next kind
  }
  // Control: with every flip undone the directory opens cleanly.
  EXPECT_TRUE(SocialSearchEngine::OpenSnapshot(
                  dir, SocialSearchEngine::Options())
                  .ok());
}

TEST(CrashSafetyTest, BitFlippedManifestIsRejected) {
  const DatasetConfig config = TestConfig(9);
  Dataset dataset = GenerateDataset(config).value();
  auto service = LocalSearchService::Build(std::move(dataset.graph),
                                           std::move(dataset.store));
  ASSERT_TRUE(service.ok());
  const std::string dir = TempDir("manifest_flip");
  const auto report = service.value()->SaveSnapshot(dir);
  ASSERT_TRUE(report.ok());

  const std::string manifest_path = persist::JoinPath(
      dir, persist::ManifestFileName(report.value().generation));
  FlipByte(manifest_path, FileSize(manifest_path) / 2);
  const auto twin = LocalSearchService::OpenSnapshot(
      dir, LocalSearchService::Options());
  ASSERT_FALSE(twin.ok());
  EXPECT_EQ(twin.status().code(), StatusCode::kCorruption)
      << twin.status().ToString();
}

TEST(CrashSafetyTest, BitFlippedShardSegmentFailsShardedOpen) {
  const DatasetConfig config = TestConfig(13);
  Dataset dataset = GenerateDataset(config).value();
  ShardedSearchService::Options options;
  options.num_shards = 2;
  auto service = ShardedSearchService::Build(std::move(dataset.graph),
                                             std::move(dataset.store),
                                             std::move(options));
  ASSERT_TRUE(service.ok());
  const std::string dir = TempDir("shard_flip");
  const auto report = service.value()->SaveSnapshot(dir);
  ASSERT_TRUE(report.ok());

  const std::string shard_dir = persist::JoinPath(dir, "shard-1");
  const auto shard_manifest = persist::ReadManifestFile(persist::JoinPath(
      shard_dir, persist::ManifestFileName(report.value().generation)));
  ASSERT_TRUE(shard_manifest.ok());
  ASSERT_FALSE(shard_manifest.value().segments.empty());
  const persist::SegmentInfo& info = shard_manifest.value().segments[0];
  FlipByte(persist::JoinPath(shard_dir, info.file),
           persist::kSegmentHeaderSize + info.payload_bytes / 2);

  const auto twin = ShardedSearchService::OpenSnapshot(
      dir, ShardedSearchService::Options());
  ASSERT_FALSE(twin.ok());
  EXPECT_EQ(twin.status().code(), StatusCode::kCorruption)
      << twin.status().ToString();
}

TEST(CrashSafetyTest, InterruptedResaveLeavesPreviousSnapshotOpenable) {
  // Simulates a crash between "segments written" and "CURRENT renamed":
  // files of the next generation exist but CURRENT still names the old
  // manifest. Opening must serve the OLD snapshot untouched.
  const DatasetConfig config = TestConfig(15);
  Dataset dataset = GenerateDataset(config).value();
  auto engine = SocialSearchEngine::Build(std::move(dataset.graph),
                                          std::move(dataset.store),
                                          SocialSearchEngine::Options());
  ASSERT_TRUE(engine.ok());
  const std::string dir = TempDir("mid_save");
  const auto first = engine.value()->SaveSnapshot(dir);
  ASSERT_TRUE(first.ok());
  const size_t saved_items = engine.value()->store().num_items();

  // Write generation-2 files WITHOUT committing (the crash window).
  ASSERT_TRUE(engine.value()->AddItem(SimpleItem(1, 3, 0.5f)).ok());
  persist::SnapshotSaveReport report;
  const auto uncommitted = engine.value()->WriteSnapshotFiles(
      dir, first.value().generation + 1, nullptr,
      persist::SnapshotSaveOptions(), &report);
  ASSERT_TRUE(uncommitted.ok()) << uncommitted.status().ToString();

  const auto twin = SocialSearchEngine::OpenSnapshot(
      dir, SocialSearchEngine::Options());
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  EXPECT_EQ(twin.value()->store().num_items(), saved_items);
}

TEST(CrashSafetyTest, MissingCurrentIsCleanError) {
  const std::string dir = TempDir("empty");
  ASSERT_TRUE(persist::EnsureDir(dir).ok());
  EXPECT_FALSE(SocialSearchEngine::OpenSnapshot(
                   dir, SocialSearchEngine::Options())
                   .ok());
  EXPECT_FALSE(LocalSearchService::OpenSnapshot(
                   dir, LocalSearchService::Options())
                   .ok());
}

}  // namespace
}  // namespace amici
