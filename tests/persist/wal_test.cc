// Ingest WAL: append/replay round trips, the committed-prefix recovery
// contract for torn and bit-flipped tails, and the generation binding
// that stops a WAL from replaying against the wrong snapshot.

#include "persist/wal.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "persist/fs_util.h"
#include "util/rng.h"

namespace amici {
namespace persist {
namespace {

std::string TempWalPath(const std::string& name) {
  const std::string path = "/tmp/amici_wal_test_" + name + ".log";
  std::remove(path.c_str());
  return path;
}

Item RandomItem(Rng* rng) {
  Item item;
  item.owner = static_cast<UserId>(rng->UniformIndex(100));
  const size_t tag_count = 1 + rng->UniformIndex(4);
  for (size_t t = 0; t < tag_count; ++t) {
    item.tags.push_back(static_cast<TagId>(rng->UniformIndex(300)));
  }
  item.quality = static_cast<float>(rng->UniformDouble());
  if (rng->Bernoulli(0.5)) {
    item.has_geo = true;
    item.latitude = static_cast<float>(rng->UniformDouble(-80, 80));
    item.longitude = static_cast<float>(rng->UniformDouble(-170, 170));
  }
  return item;
}

/// Replayed mutation trace: one entry per record, in order.
struct Op {
  uint8_t type;  // 1 add items, 2 add friendship, 3 remove friendship
  uint64_t first_item_id = 0;
  std::vector<Item> items;
  UserId u = 0;
  UserId v = 0;
};

WalReplayHandlers Collect(std::vector<Op>* ops) {
  WalReplayHandlers handlers;
  handlers.add_items = [ops](uint64_t first,
                             std::vector<Item>&& items) -> Status {
    ops->push_back({1, first, std::move(items), 0, 0});
    return Status::Ok();
  };
  handlers.add_friendship = [ops](UserId u, UserId v) -> Status {
    ops->push_back({2, 0, {}, u, v});
    return Status::Ok();
  };
  handlers.remove_friendship = [ops](UserId u, UserId v) -> Status {
    ops->push_back({3, 0, {}, u, v});
    return Status::Ok();
  };
  return handlers;
}

void ExpectItemsEqual(const Item& a, const Item& b) {
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.has_geo, b.has_geo);
  if (a.has_geo) {
    EXPECT_EQ(a.latitude, b.latitude);
    EXPECT_EQ(a.longitude, b.longitude);
  }
}

TEST(WalTest, RoundTripsMixedRecords) {
  const std::string path = TempWalPath("roundtrip");
  Rng rng(1);
  std::vector<Op> written;
  {
    auto wal = WalWriter::Create(path, 3);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    uint64_t next_id = 500;
    for (int i = 0; i < 30; ++i) {
      const double dice = rng.UniformDouble();
      if (dice < 0.5) {
        std::vector<Item> items;
        const size_t count = 1 + rng.UniformIndex(5);
        for (size_t j = 0; j < count; ++j) items.push_back(RandomItem(&rng));
        ASSERT_TRUE(wal.value()->AppendAddItems(next_id, items).ok());
        written.push_back({1, next_id, items, 0, 0});
        next_id += count;
      } else {
        const UserId u = static_cast<UserId>(rng.UniformIndex(100));
        const UserId v = static_cast<UserId>(rng.UniformIndex(100));
        if (dice < 0.8) {
          ASSERT_TRUE(wal.value()->AppendAddFriendship(u, v).ok());
          written.push_back({2, 0, {}, u, v});
        } else {
          ASSERT_TRUE(wal.value()->AppendRemoveFriendship(u, v).ok());
          written.push_back({3, 0, {}, u, v});
        }
      }
    }
    ASSERT_TRUE(wal.value()->Flush().ok());
  }

  std::vector<Op> replayed;
  const auto stats = ReplayWal(path, 3, Collect(&replayed));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().records_applied, written.size());
  EXPECT_FALSE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().snapshot_generation, 3u);
  ASSERT_EQ(replayed.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replayed[i].type, written[i].type) << "record " << i;
    EXPECT_EQ(replayed[i].first_item_id, written[i].first_item_id);
    EXPECT_EQ(replayed[i].u, written[i].u);
    EXPECT_EQ(replayed[i].v, written[i].v);
    ASSERT_EQ(replayed[i].items.size(), written[i].items.size());
    for (size_t j = 0; j < written[i].items.size(); ++j) {
      ExpectItemsEqual(written[i].items[j], replayed[i].items[j]);
    }
  }
}

TEST(WalTest, RejectsGenerationMismatch) {
  const std::string path = TempWalPath("generation");
  {
    auto wal = WalWriter::Create(path, 5);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->AppendAddFriendship(1, 2).ok());
  }
  std::vector<Op> ops;
  const auto stats = ReplayWal(path, 6, Collect(&ops));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(ops.empty());
}

TEST(WalTest, TruncatedTailRecoversCommittedPrefix) {
  const std::string path = TempWalPath("torn");
  {
    auto wal = WalWriter::Create(path, 1);
    ASSERT_TRUE(wal.ok());
    for (UserId u = 0; u < 20; ++u) {
      ASSERT_TRUE(wal.value()->AppendAddFriendship(u, u + 1).ok());
    }
    ASSERT_TRUE(wal.value()->Flush().ok());
  }
  // Baseline: committed extent of the intact log.
  const auto intact = ScanWal(path, 1);
  ASSERT_TRUE(intact.ok());
  const uint64_t full_bytes = intact.value().committed_bytes;

  // Chop at EVERY byte position: replay must deliver exactly the records
  // whose frames survived in full, flag a tear iff the cut fell inside a
  // frame, and never error (tail damage is recovery, not corruption).
  const uint64_t record_bytes = (full_bytes - kWalHeaderSize) / 20;
  for (uint64_t cut = full_bytes - 1; cut > kWalHeaderSize; --cut) {
    ASSERT_TRUE(::truncate(path.c_str(), static_cast<off_t>(cut)) == 0);
    std::vector<Op> ops;
    const auto stats = ReplayWal(path, 1, Collect(&ops));
    ASSERT_TRUE(stats.ok())
        << "cut at " << cut << ": " << stats.status().ToString();
    const uint64_t whole = (cut - kWalHeaderSize) / record_bytes;
    EXPECT_EQ(stats.value().torn_tail,
              (cut - kWalHeaderSize) % record_bytes != 0)
        << "cut at " << cut;
    EXPECT_EQ(stats.value().committed_bytes,
              kWalHeaderSize + whole * record_bytes)
        << "cut at " << cut;
    ASSERT_EQ(ops.size(), whole);
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(ops[i].u, static_cast<UserId>(i)) << "cut at " << cut;
    }
  }
}

TEST(WalTest, BitFlippedRecordStopsReplayAtFlip) {
  const std::string path = TempWalPath("flip");
  {
    auto wal = WalWriter::Create(path, 2);
    ASSERT_TRUE(wal.ok());
    for (UserId u = 0; u < 10; ++u) {
      ASSERT_TRUE(wal.value()->AppendAddFriendship(u, u + 1).ok());
    }
  }
  const auto intact = ScanWal(path, 2);
  ASSERT_TRUE(intact.ok());
  const uint64_t full_bytes = intact.value().committed_bytes;
  const uint64_t record_bytes = (full_bytes - kWalHeaderSize) / 10;

  // Flip a byte inside record 6: records 0..5 replay, the rest drop.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff offset =
        static_cast<std::streamoff>(kWalHeaderSize + 6 * record_bytes + 3);
    file.seekg(offset);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(offset);
    file.write(&byte, 1);
  }
  std::vector<Op> ops;
  const auto stats = ReplayWal(path, 2, Collect(&ops));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().records_applied, 6u);
  EXPECT_EQ(stats.value().committed_bytes,
            kWalHeaderSize + 6 * record_bytes);
}

TEST(WalTest, OpenForAppendTruncatesTornTailAndContinues) {
  const std::string path = TempWalPath("reopen");
  {
    auto wal = WalWriter::Create(path, 4);
    ASSERT_TRUE(wal.ok());
    for (UserId u = 0; u < 5; ++u) {
      ASSERT_TRUE(wal.value()->AppendAddFriendship(u, 50).ok());
    }
  }
  const auto before = ScanWal(path, 4);
  ASSERT_TRUE(before.ok());
  // Tear the last record, reopen at the committed prefix, keep writing.
  ASSERT_TRUE(::truncate(path.c_str(),
                         static_cast<off_t>(before.value().committed_bytes) -
                             2) == 0);
  const auto recovered = ScanWal(path, 4);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().records_applied, 4u);
  {
    auto wal =
        WalWriter::OpenForAppend(path, recovered.value().committed_bytes);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal.value()->AppendRemoveFriendship(9, 50).ok());
    ASSERT_TRUE(wal.value()->Flush().ok());
  }
  std::vector<Op> ops;
  const auto after = ReplayWal(path, 4, Collect(&ops));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().torn_tail);
  ASSERT_EQ(ops.size(), 5u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(ops[i].type, 2);
  EXPECT_EQ(ops[4].type, 3);
  EXPECT_EQ(ops[4].u, 9u);
}

}  // namespace
}  // namespace persist
}  // namespace amici
