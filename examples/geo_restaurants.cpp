// Geo-social scenario: restaurant check-ins with ratings. "Find top
// italian places near me, preferring spots my friends rated" — the
// geo-social query of the Fig 8 experiment, shown through the public API,
// including the radius-dependent choice between geo-driven and
// social-driven execution.
//
//   ./build/examples/geo_restaurants

#include <cstdio>

#include "core/engine.h"
#include "geo/geo_point.h"
#include "workload/dataset_generator.h"

using namespace amici;

int main() {
  // City-clustered "check-in" dataset: every item has a geo position.
  DatasetConfig config = SmallDataset();
  config.name = "restaurants";
  config.num_users = 4000;
  config.items_per_user = 4.0;
  config.num_tags = 500;  // cuisines & dishes
  config.geo_fraction = 1.0;
  config.num_cities = 4;
  config.city_sigma_km = 4.0;
  auto dataset = GenerateDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Remember one anchor position ("where I am") before the engine takes
  // ownership of the store.
  GeoPoint me{0.0f, 0.0f};
  for (ItemId i = 0; i < dataset.value().store.num_items(); ++i) {
    if (dataset.value().store.has_geo(i)) {
      me = {dataset.value().store.latitude(i),
            dataset.value().store.longitude(i)};
      break;
    }
  }

  auto engine = SocialSearchEngine::Build(std::move(dataset.value().graph),
                                          std::move(dataset.value().store),
                                          {});
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  SocialQuery query;
  query.user = 42;
  query.tags = {3, 17};  // "italian", "pasta"
  NormalizeQuery(&query);
  query.k = 5;
  query.alpha = 0.5;
  query.has_geo_filter = true;
  query.latitude = me.latitude;
  query.longitude = me.longitude;

  std::printf("user %u searching tags {3,17} around (%.3f, %.3f)\n\n",
              query.user, me.latitude, me.longitude);
  std::printf("%-10s %-10s %-28s %s\n", "radius km", "strategy", "results",
              "items examined");
  for (const float radius : {1.0f, 5.0f, 25.0f, 100.0f}) {
    query.radius_km = radius;
    for (const AlgorithmId id :
         {AlgorithmId::kGeoGrid, AlgorithmId::kHybrid}) {
      const auto result = engine.value()->Query(query, id);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        continue;
      }
      char results[64] = {0};
      size_t off = 0;
      for (const auto& entry : result.value().items) {
        off += static_cast<size_t>(std::snprintf(
            results + off, sizeof(results) - off, "%u ", entry.item));
        if (off >= sizeof(results) - 8) break;
      }
      std::printf("%-10.0f %-10s %-28s %llu\n", radius,
                  std::string(result.value().algorithm).c_str(), results,
                  static_cast<unsigned long long>(
                      result.value().stats.items_considered +
                      result.value().stats.aggregation.candidates_scored));
    }
  }
  std::printf("\nsmall radius: geo-grid wins (few candidates in range);\n");
  std::printf("large radius: the social/content indexes win again.\n");
  return 0;
}
