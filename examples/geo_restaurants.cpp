// Geo-social scenario: restaurant check-ins with ratings. "Find top
// italian places near me, preferring spots my friends rated" — the
// geo-social query of the Fig 8 experiment, driven through the
// SearchService API, including the radius-dependent choice between
// geo-driven and social-driven execution (a per-request hint) — and the
// same requests served by a 4-way sharded backend with identical answers.
//
//   ./build/examples/geo_restaurants

#include <cstdio>
#include <memory>
#include <string>

#include "geo/geo_point.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "workload/dataset_generator.h"

using namespace amici;

int main() {
  // City-clustered "check-in" dataset: every item has a geo position.
  DatasetConfig config = SmallDataset();
  config.name = "restaurants";
  config.num_users = 4000;
  config.items_per_user = 4.0;
  config.num_tags = 500;  // cuisines & dishes
  config.geo_fraction = 1.0;
  config.num_cities = 4;
  config.city_sigma_km = 4.0;
  auto dataset = GenerateDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Remember one anchor position ("where I am") before the service takes
  // ownership of the store.
  GeoPoint me{0.0f, 0.0f};
  for (ItemId i = 0; i < dataset.value().store.num_items(); ++i) {
    if (dataset.value().store.has_geo(i)) {
      me = {dataset.value().store.latitude(i),
            dataset.value().store.longitude(i)};
      break;
    }
  }

  auto local_or = LocalSearchService::Build(std::move(dataset.value().graph),
                                            std::move(dataset.value().store));
  if (!local_or.ok()) {
    std::fprintf(stderr, "%s\n", local_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SearchService> service = std::move(local_or).value();

  SearchRequest request;
  request.query.user = 42;
  request.query.tags = {3, 17};  // "italian", "pasta"
  NormalizeQuery(&request.query);
  request.query.k = 5;
  request.query.alpha = 0.5;
  request.query.has_geo_filter = true;
  request.query.latitude = me.latitude;
  request.query.longitude = me.longitude;

  std::printf("user %u searching tags {3,17} around (%.3f, %.3f)\n\n",
              request.query.user, me.latitude, me.longitude);
  auto sweep = [&](SearchService* backend) {
    std::printf("%-10s %-10s %-28s %s\n", "radius km", "strategy", "results",
                "items examined");
    for (const float radius : {1.0f, 5.0f, 25.0f, 100.0f}) {
      request.query.radius_km = radius;
      for (const AlgorithmId id :
           {AlgorithmId::kGeoGrid, AlgorithmId::kHybrid}) {
        request.algorithm = id;
        const auto response = backend->Search(request);
        if (!response.ok()) {
          std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
          continue;
        }
        char results[64] = {0};
        size_t off = 0;
        for (const auto& entry : response.value().items) {
          off += static_cast<size_t>(std::snprintf(
              results + off, sizeof(results) - off, "%u ", entry.item));
          if (off >= sizeof(results) - 8) break;
        }
        std::printf("%-10.0f %-10s %-28s %llu\n", radius,
                    std::string(response.value().algorithm).c_str(), results,
                    static_cast<unsigned long long>(
                        response.value().stats.items_considered +
                        response.value().stats.aggregation.candidates_scored));
      }
    }
  };
  sweep(service.get());
  std::printf("\nsmall radius: geo-grid wins (few candidates in range);\n");
  std::printf("large radius: the social/content indexes win again.\n");

  // The same sweep on a sharded backend: identical result ids, with the
  // work spread across 4 partitions (the geo-grid hint is applied per
  // shard, falling back transparently on shards that hold no geo items).
  ShardedSearchService::Options sharded_options;
  sharded_options.num_shards = 4;
  Dataset replica = GenerateDataset(config).value();  // deterministic rebuild
  auto sharded_or = ShardedSearchService::Build(std::move(replica.graph),
                                                std::move(replica.store),
                                                std::move(sharded_options));
  if (!sharded_or.ok()) {
    std::fprintf(stderr, "%s\n", sharded_or.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsame sweep, backend %s:\n",
              std::string(sharded_or.value()->backend_name()).c_str());
  sweep(sharded_or.value().get());
  return 0;
}
