// Quickstart: build a tiny social network by hand, index a handful of
// items, and run one social top-k query end to end — through the
// backend-agnostic SearchService API. The same request is then served by
// a sharded backend to show that the backend is a deployment choice, not
// a code change.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "graph/graph_builder.h"
#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "storage/tag_dictionary.h"

using amici::GraphBuilder;
using amici::Item;
using amici::ItemStore;
using amici::LocalSearchService;
using amici::SearchRequest;
using amici::SearchService;
using amici::ShardedSearchService;
using amici::TagDictionary;
using amici::UserId;

int main() {
  // --- 1. The social graph: alice(0) - bob(1) - carol(2), dave(3) apart.
  const char* names[] = {"alice", "bob", "carol", "dave"};
  auto build_graph = [] {
    GraphBuilder graph_builder(4);
    (void)graph_builder.AddEdge(0, 1);  // alice - bob
    (void)graph_builder.AddEdge(1, 2);  // bob - carol
    (void)graph_builder.AddEdge(2, 3);  // carol - dave
    return graph_builder.Build();
  };

  // --- 2. The catalogue: photos described by tags. Intern is
  // idempotent, so rebuilding the store (once per backend below) through
  // the one shared dictionary assigns identical ids each time.
  TagDictionary tags;
  auto build_store = [&tags] {
    ItemStore store;
    auto post = [&](UserId owner, std::initializer_list<const char*> words,
                    float quality) {
      Item item;
      item.owner = owner;
      for (const char* w : words) item.tags.push_back(tags.Intern(w));
      item.quality = quality;
      const auto id = store.Add(item);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      }
    };
    post(1, {"sunset", "beach"}, 0.9f);      // item 0, bob
    post(2, {"sunset", "city"}, 0.8f);       // item 1, carol
    post(3, {"sunset", "mountain"}, 0.95f);  // item 2, dave
    post(0, {"coffee"}, 0.7f);               // item 3, alice herself
    post(1, {"beach", "surf"}, 0.6f);        // item 4, bob
    return store;
  };

  // --- 3. Build the service (engine + indexes behind one query surface).
  auto service_or = LocalSearchService::Build(build_graph(), build_store());
  if (!service_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SearchService> service = std::move(service_or).value();

  // --- 4. Alice searches "sunset", blending content with friendship.
  SearchRequest request;
  request.query.user = 0;  // alice
  request.query.tags = {tags.Lookup("sunset")};
  request.query.k = 3;
  request.query.alpha = 0.6;  // lean social: friends' photos first

  auto show = [&](SearchService* backend) {
    const auto response = backend->Search(request);
    if (!response.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status().ToString().c_str());
      return;
    }
    std::printf("alice searches \"sunset\" (k=%zu, alpha=%.1f) on %s:\n",
                request.query.k, request.query.alpha,
                std::string(response.value().backend).c_str());
    for (const auto& entry : response.value().items) {
      const UserId owner = backend->OwnerOf(entry.item);
      std::printf("  item %u by %-6s score %.3f  tags:", entry.item,
                  names[owner], entry.score);
      for (const auto tag : backend->TagsOf(entry.item)) {
        std::printf(" %s", tags.Name(tag).c_str());
      }
      std::printf("\n");
    }
  };
  show(service.get());
  std::printf(
      "\nexpectation: bob (direct friend) outranks carol (2 hops), and\n"
      "dave's higher-quality photo (3 hops away) does not even place;\n"
      "alice's own unrelated post sneaks in purely through self-proximity.\n");

  // --- 5. The same request against a sharded backend: the 5 items are
  // hash-partitioned across 2 engines, the graph is replicated, and the
  // per-shard top-k lists are merged exactly — identical answers.
  ShardedSearchService::Options sharded_options;
  sharded_options.num_shards = 2;
  auto sharded_or = ShardedSearchService::Build(build_graph(), build_store(),
                                                std::move(sharded_options));
  if (!sharded_or.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 sharded_or.status().ToString().c_str());
    return 1;
  }
  std::printf("\n");
  show(sharded_or.value().get());
  std::printf("\nsame items, same scores: sharding is invisible to callers.\n");
  return 0;
}
