// Quickstart: build a tiny social network by hand, index a handful of
// items, and run one social top-k query end to end.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "graph/graph_builder.h"
#include "storage/tag_dictionary.h"

using amici::AlgorithmId;
using amici::GraphBuilder;
using amici::Item;
using amici::ItemStore;
using amici::SocialQuery;
using amici::SocialSearchEngine;
using amici::TagDictionary;
using amici::UserId;

int main() {
  // --- 1. The social graph: alice(0) - bob(1) - carol(2), dave(3) apart.
  const char* names[] = {"alice", "bob", "carol", "dave"};
  GraphBuilder graph_builder(4);
  (void)graph_builder.AddEdge(0, 1);  // alice - bob
  (void)graph_builder.AddEdge(1, 2);  // bob - carol
  (void)graph_builder.AddEdge(2, 3);  // carol - dave

  // --- 2. The catalogue: photos described by tags.
  TagDictionary tags;
  ItemStore store;
  auto post = [&](UserId owner, std::initializer_list<const char*> words,
                  float quality) {
    Item item;
    item.owner = owner;
    for (const char* w : words) item.tags.push_back(tags.Intern(w));
    item.quality = quality;
    const auto id = store.Add(item);
    if (!id.ok()) std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
  };
  post(1, {"sunset", "beach"}, 0.9f);   // item 0, bob
  post(2, {"sunset", "city"}, 0.8f);    // item 1, carol
  post(3, {"sunset", "mountain"}, 0.95f);  // item 2, dave
  post(0, {"coffee"}, 0.7f);            // item 3, alice herself
  post(1, {"beach", "surf"}, 0.6f);     // item 4, bob

  // --- 3. Build the engine (indexes + proximity model + cache).
  auto engine = SocialSearchEngine::Build(graph_builder.Build(),
                                          std::move(store), {});
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // --- 4. Alice searches "sunset", blending content with friendship.
  SocialQuery query;
  query.user = 0;  // alice
  query.tags = {tags.Lookup("sunset")};
  query.k = 3;
  query.alpha = 0.6;  // lean social: friends' photos first

  const auto result = engine.value()->Query(query, AlgorithmId::kHybrid);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("alice searches \"sunset\" (k=%zu, alpha=%.1f):\n", query.k,
              query.alpha);
  for (const auto& entry : result.value().items) {
    const UserId owner = engine.value()->store().owner(entry.item);
    std::printf("  item %u by %-6s score %.3f  tags:", entry.item,
                names[owner], entry.score);
    for (const auto tag : engine.value()->store().tags(entry.item)) {
      std::printf(" %s", tags.Name(tag).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpectation: bob (direct friend) outranks carol (2 hops), and\n"
      "dave's higher-quality photo (3 hops away) does not even place;\n"
      "alice's own unrelated post sneaks in purely through self-proximity.\n");
  return 0;
}
