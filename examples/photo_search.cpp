// Photo-sharing scenario: a Flickr-like tagged photo corpus over a
// scale-free social network, driven through the SearchService API. Shows
// how the alpha blend changes what one user sees for the same keyword
// query, owner-diversified feeds (max_per_owner), the personalized
// thesaurus (SuggestTags), and the engine's execution strategies compared
// on the same workload via the request's algorithm hint.
//
//   ./build/examples/photo_search

#include <cstdio>
#include <memory>

#include "service/local_search_service.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

using namespace amici;

int main() {
  // A "photo sharing site": 5k users, ~25k photos, Zipf-popular tags,
  // friends posting similar content (social locality 0.6).
  DatasetConfig config = SmallDataset();
  config.name = "photo-site";
  config.num_users = 5000;
  config.items_per_user = 5.0;
  config.num_tags = 4000;
  config.social_locality = 0.6;
  config.geo_fraction = 0.0;
  auto dataset = GenerateDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("photo corpus: %zu users, %zu photos, %zu tags\n",
              dataset.value().graph.num_users(),
              dataset.value().store.num_items(),
              dataset.value().tags.size());

  Dataset workload_view = GenerateDataset(config).value();  // for queries
  auto service_or = LocalSearchService::Build(std::move(dataset.value().graph),
                                              std::move(dataset.value().store));
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s\n", service_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SearchService> service = std::move(service_or).value();

  // One user, one tag query, three different blends.
  QueryWorkloadConfig wconfig;
  wconfig.num_queries = 1;
  wconfig.seed = 11;
  SearchRequest request;
  request.query = GenerateQueries(workload_view, wconfig).value()[0];
  request.query.k = 5;

  for (const double alpha : {0.0, 0.5, 1.0}) {
    request.query.alpha = alpha;
    const auto response = service->Search(request);
    if (!response.ok()) continue;
    std::printf("\nalpha = %.1f (%s):\n", alpha,
                alpha == 0.0   ? "pure content relevance"
                : alpha == 1.0 ? "pure social feed"
                               : "blended");
    for (const auto& entry : response.value().items) {
      std::printf("  photo %-6u owner %-5u score %.4f\n", entry.item,
                  service->OwnerOf(entry.item), entry.score);
    }
  }

  // A prolific friend cannot monopolize the page: cap every owner to one
  // photo (exact owner-diversified top-k, one request option away).
  request.query.alpha = 0.8;
  request.max_per_owner = 1;
  const auto diverse = service->Search(request);
  if (diverse.ok()) {
    std::printf("\nmax_per_owner = 1 (every photo from a distinct owner):\n");
    for (const auto& entry : diverse.value().items) {
      std::printf("  photo %-6u owner %-5u score %.4f\n", entry.item,
                  service->OwnerOf(entry.item), entry.score);
    }
  }
  request.max_per_owner = 0;

  // "A little help from my friends" on the query side: expand the query
  // with tags the user's circle co-posts with the seed tags — a
  // personalized thesaurus.
  const auto suggestions = service->SuggestTags(
      request.query.user, request.query.tags,
      QueryExpansionOptions{.max_suggestions = 5});
  if (suggestions.ok()) {
    std::printf("\nsocially-suggested expansion tags for user %u:",
                request.query.user);
    for (const TagSuggestion& s : suggestions.value()) {
      std::printf("  %s(%.2f)", workload_view.tags.Name(s.tag).c_str(),
                  s.weight);
    }
    std::printf("\n");
  }

  // Same workload, every execution strategy: identical answers, very
  // different work. The strategy is a per-request hint on the service.
  wconfig.num_queries = 200;
  wconfig.alpha = 0.5;
  wconfig.seed = 12;
  const auto queries = GenerateQueries(workload_view, wconfig).value();
  std::printf("\nrunning %zu blended queries under each strategy...\n",
              queries.size());
  for (const AlgorithmId id :
       {AlgorithmId::kExhaustive, AlgorithmId::kMergeScan,
        AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
        AlgorithmId::kHybrid}) {
    for (const SocialQuery& q : queries) {
      SearchRequest hinted;
      hinted.query = q;
      hinted.algorithm = id;
      (void)service->Search(hinted);
    }
  }
  std::printf("%s\n", service->StatsSummary().c_str());
  std::printf("note: identical result quality; the early-terminating\n"
              "strategies examine a fraction of the catalogue.\n");
  return 0;
}
