// News-feed scenario: alpha = 1 turns the engine into a pure social feed
// ("newest first" is the quality prior here). Demonstrates the
// incremental-ingest path: fresh posts are queryable immediately (tail
// scan), then folded into the indexes by Compact() — the main-index +
// memtable design borrowed from LSM storage engines.
//
//   ./build/examples/news_feed

#include <cstdio>

#include "core/engine.h"
#include "workload/dataset_generator.h"

using namespace amici;

int main() {
  DatasetConfig config = SmallDataset();
  config.name = "feed";
  config.num_users = 3000;
  config.items_per_user = 3.0;
  config.num_tags = 1000;
  config.geo_fraction = 0.0;
  auto dataset = GenerateDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto engine = SocialSearchEngine::Build(std::move(dataset.value().graph),
                                          std::move(dataset.value().store),
                                          {});
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  const UserId reader = 7;
  SocialQuery feed;
  feed.user = reader;
  feed.tags = {0};   // a topic the reader follows
  feed.k = 8;
  feed.alpha = 0.9;  // heavily social, small topical tiebreaker

  auto show = [&](const char* label) {
    const auto result = engine.value()->Query(feed);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s (%zu entries, %.3f ms):\n", label,
                result.value().items.size(), result.value().elapsed_ms);
    for (const auto& entry : result.value().items) {
      std::printf("  post %-6u by user %-5u social-score %.4f\n", entry.item,
                  engine.value()->store().owner(entry.item), entry.score);
    }
  };

  show("feed before new posts");

  // Friends post fresh content; visible immediately, no reindexing needed.
  const auto friends = engine.value()->graph().Friends(reader);
  std::printf("\nuser %u's friends post %zu new items...\n", reader,
              friends.size());
  for (const UserId poster : friends) {
    Item post;
    post.owner = poster;
    post.tags = {0};
    post.quality = 0.99f;  // hot off the press
    const auto id = engine.value()->AddItem(post);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    }
  }
  std::printf("unindexed tail: %zu items\n\n", engine.value()->unindexed_items());
  show("feed with fresh posts (tail-merged)");

  // Fold the tail into the indexes; the feed must not change.
  if (const auto status = engine.value()->Compact(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\ncompacted; unindexed tail: %zu items\n\n",
              engine.value()->unindexed_items());
  show("feed after compaction (identical)");
  return 0;
}
