// News-feed scenario: alpha = 1 turns the service into a pure social feed
// — including the TAG-LESS form ("show me my friends' stuff", no topic at
// all). Demonstrates the incremental-ingest path through the service API:
// fresh posts are queryable immediately (tail scan), a whole burst is
// ingested as ONE AddItems batch (one snapshot publish), then folded into
// the indexes by Compact() — the main-index + memtable design borrowed
// from LSM storage engines.
//
//   ./build/examples/news_feed

#include <cstdio>
#include <memory>
#include <vector>

#include "service/local_search_service.h"
#include "workload/dataset_generator.h"

using namespace amici;

int main() {
  DatasetConfig config = SmallDataset();
  config.name = "feed";
  config.num_users = 3000;
  config.items_per_user = 3.0;
  config.num_tags = 1000;
  config.geo_fraction = 0.0;
  auto dataset = GenerateDataset(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto service_or = LocalSearchService::Build(std::move(dataset.value().graph),
                                              std::move(dataset.value().store));
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s\n", service_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SearchService> service = std::move(service_or).value();

  const UserId reader = 7;
  SearchRequest feed;
  feed.query.user = reader;
  // No tags at all: the pure-social feed ranks entirely by proximity.
  feed.query.k = 8;
  feed.query.alpha = 1.0;
  // Without this the reader's own posts (proximity 1.0) fill the page;
  // capping each owner at 2 lets friends through — still exact.
  feed.max_per_owner = 2;

  auto show = [&](const char* label) {
    const auto response = service->Search(feed);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return;
    }
    std::printf("%s (%zu entries, %.3f ms):\n", label,
                response.value().items.size(), response.value().elapsed_ms);
    for (const auto& entry : response.value().items) {
      std::printf("  post %-6u by user %-5u social-score %.4f\n", entry.item,
                  service->OwnerOf(entry.item), entry.score);
    }
  };

  show("feed before new posts");

  // Friends post fresh content, ingested as ONE batch: a single
  // writer-lock acquisition and snapshot publish for the whole burst.
  // Visible immediately, no reindexing needed.
  const auto friends = service->FriendsOf(reader);
  std::printf("\nuser %u's friends post %zu new items (one batch)...\n",
              reader, friends.size());
  std::vector<Item> burst;
  for (const UserId poster : friends) {
    Item post;
    post.owner = poster;
    post.tags = {0};
    post.quality = 0.99f;  // hot off the press
    burst.push_back(post);
  }
  const auto ids = service->AddItems(burst);
  if (!ids.ok()) {
    std::fprintf(stderr, "%s\n", ids.status().ToString().c_str());
    return 1;
  }
  std::printf("unindexed tail: %zu items\n\n", service->unindexed_items());
  show("feed with fresh posts (tail-merged)");

  // Fold the tail into the indexes; the feed must not change.
  if (const auto status = service->Compact(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\ncompacted; unindexed tail: %zu items\n\n",
              service->unindexed_items());
  show("feed after compaction (identical)");

  // --- The production-shaped write path: the ingest pipeline. ----------
  // Producers enqueue into an MPSC queue and return immediately; a
  // dedicated writer thread coalesces queued batches into few snapshot
  // publishes, and a background scheduler compacts when the tail (or the
  // tail-scan latency) crosses the policy's thresholds — no manual
  // Compact() anywhere.
  if (const auto status = service->StartIngest(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  CompactionScheduler::Options compaction;
  compaction.policy = std::make_shared<AdaptiveCompactionPolicy>(
      AdaptiveCompactionPolicy::Options{/*max_tail_items=*/64,
                                        /*max_tail_scan_ms=*/1.0,
                                        /*min_tail_items=*/16});
  compaction.poll_interval_ms = 2.0;
  if (const auto status = service->StartAutoCompaction(compaction);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("\ningest pipeline up: friends post another burst, async...\n");
  std::vector<Item> evening_burst;
  for (const UserId poster : friends) {
    Item post;
    post.owner = poster;
    post.tags = {1};
    post.quality = 0.97f;
    evening_burst.push_back(post);
  }
  const auto ticket = service->EnqueueItems(evening_burst);
  if (!ticket.ok()) {
    std::fprintf(stderr, "%s\n", ticket.status().ToString().c_str());
    return 1;
  }
  // Flush() is the read-your-writes barrier: after it, the burst is
  // guaranteed queryable.
  if (const auto status = service->Flush(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("ticket resolved: %zu posts applied, first id %u\n",
              ticket.value().ids().size(), ticket.value().ids().front());
  show("feed after queued burst (read-your-writes via Flush)");

  const IngestCounters counters = service->ingest_counters();
  std::printf(
      "\ningest counters: %llu batches enqueued -> %llu AddItems calls, "
      "%llu items applied; %llu background compactions so far\n",
      static_cast<unsigned long long>(counters.batches_enqueued),
      static_cast<unsigned long long>(counters.apply_calls),
      static_cast<unsigned long long>(counters.items_applied),
      static_cast<unsigned long long>(service->auto_compactions()));
  // Orderly teardown (the destructor would also do this).
  service->StopAutoCompaction();
  service->StopIngest();
  return 0;
}
