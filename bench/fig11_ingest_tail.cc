// Fig 11 (extension experiment) — the cost of freshness, in three parts.
//
// Part 1 (serial): query latency as the un-indexed ingest tail grows, and
// the effect of Compact(). The LSM-flavoured main-index + tail design
// keeps fresh items queryable at the price of an exhaustive tail scan;
// this quantifies when compaction pays.
//
// Part 2 (concurrent): the snapshot read/write split at work — a writer
// thread ingests at full speed (with a mid-stream Compact) while this
// thread keeps querying. Reported is the query latency DURING ingest and
// DURING compaction: no external exclusion, no stop-the-world.
//
// Part 3 (queue mode): the ingest pipeline — producers enqueue batches
// into the MPSC queue, the dedicated writer thread coalesces them into
// few AddItems calls (few snapshot publishes), and the background
// compaction scheduler keeps the tail bounded without any manual
// Compact(). Reported per backpressure mode: query latency during queued
// ingest plus the writer-side coalescing ratio.
//
// Part 4 (cold start): restart cost — full re-ingest (rebuild every
// index from the raw rows) vs snapshot map + WAL tail replay, across
// restart-tail sizes, plus the first-query latency each path pays right
// after coming up.
//
// Part 5 (friendship edits): per-edit latency of the delta-overlay edit
// path (replace the two endpoint rows, publish base + patch) vs the O(E)
// full-CSR splice it replaced, across graph sizes. The overlay p50 must
// stay flat in |E| while the splice grows linearly; the overlay max
// column shows the amortized fold spikes.
//
//   --smoke   small dataset / reduced volumes (CI smoke run)

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "graph/graph_generators.h"
#include "graph/graph_io.h"
#include "proximity/shared_proximity_provider.h"
#include "ingest/compaction_policy.h"
#include "service/local_search_service.h"
#include "storage/item_store_io.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

namespace {

Item RandomItem(Rng& rng, size_t num_users) {
  Item item;
  item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
  item.tags = {static_cast<TagId>(rng.UniformIndex(10000))};
  item.quality = static_cast<float>(rng.UniformDouble());
  return item;
}

/// Queries in a loop until `stop` flips, recording per-query latency.
LatencySummary QueryUntil(SocialSearchEngine* engine,
                          const std::vector<SocialQuery>& queries,
                          const std::atomic<bool>& stop) {
  LatencyRecorder recorder;
  while (!stop.load(std::memory_order_acquire)) {
    for (const SocialQuery& query : queries) {
      Stopwatch watch;
      const auto result = engine->Query(query, AlgorithmId::kHybrid);
      AMICI_CHECK(result.ok()) << result.status().ToString();
      recorder.Record(watch.ElapsedMillis());
      if (stop.load(std::memory_order_acquire)) break;
    }
  }
  return recorder.Summarize();
}

/// The O(E) baseline part 5 compares against: the full-CSR splice the
/// provider performed per edit before the delta-overlay representation —
/// copy both arrays, inserting/removing v in u's row and u in v's row.
SocialGraph RebuildCsrWithEdge(const SocialGraph& graph, UserId u, UserId v,
                               bool insert) {
  const size_t num_users = graph.num_users();
  std::vector<uint64_t> offsets;
  offsets.reserve(num_users + 1);
  offsets.push_back(0);
  std::vector<UserId> neighbors;
  neighbors.reserve(graph.total_adjacency_slots() + (insert ? 2 : 0));
  for (UserId row = 0; row < num_users; ++row) {
    const auto friends = graph.Friends(row);
    if (row != u && row != v) {
      neighbors.insert(neighbors.end(), friends.begin(), friends.end());
    } else {
      const UserId other = row == u ? v : u;
      bool placed = !insert;
      for (const UserId f : friends) {
        if (insert && !placed && f > other) {
          neighbors.push_back(other);
          placed = true;
        }
        if (!insert && f == other) continue;
        neighbors.push_back(f);
      }
      if (!placed) neighbors.push_back(other);
    }
    offsets.push_back(neighbors.size());
  }
  return SocialGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::PrintBanner(
      "Fig 11 (extension): hybrid latency vs un-indexed tail size "
      "[alpha=0.5, k=10]",
      "latency grows linearly with the tail; compaction restores the "
      "indexed baseline");

  bench::EngineBundle bundle =
      bench::BuildEngine(smoke ? SmallDataset() : MediumDataset());
  QueryWorkloadConfig workload;
  workload.num_queries = smoke ? 15 : 60;
  workload.k = 10;
  workload.alpha = 0.5;
  workload.seed = 1111;
  const auto queries = GenerateQueries(bundle.workload_view, workload);
  if (!queries.ok()) return 1;
  bench::WarmProximityCache(bundle.engine.get(), queries.value());

  const std::vector<size_t> tail_targets =
      smoke ? std::vector<size_t>{0, 1000, 5000}
            : std::vector<size_t>{0, 1000, 5000, 10000, 25000, 50000};
  Rng rng(5);
  TablePrinter table({"tail items", "hybrid mean ms", "hybrid p99 ms"});
  size_t added = 0;
  for (const size_t target : tail_targets) {
    while (added < target) {
      Item item;
      item.owner = static_cast<UserId>(
          rng.UniformIndex(bundle.engine->graph().num_users()));
      item.tags = {static_cast<TagId>(rng.UniformIndex(10000))};
      item.quality = static_cast<float>(rng.UniformDouble());
      if (!bundle.engine->AddItem(item).ok()) return 1;
      ++added;
    }
    const auto summary = bench::RunQueries(bundle.engine.get(),
                                           queries.value(),
                                           AlgorithmId::kHybrid);
    table.AddRow({WithThousandsSeparators(target), bench::Ms(summary.mean),
                  bench::Ms(summary.p99)});
    std::fprintf(stderr, "[bench] tail=%zu done\n", target);
  }

  if (!bundle.engine->Compact().ok()) return 1;
  const auto compacted = bench::RunQueries(bundle.engine.get(),
                                           queries.value(),
                                           AlgorithmId::kHybrid);
  table.AddRow({"after Compact()", bench::Ms(compacted.mean),
                bench::Ms(compacted.p99)});
  std::printf("%s", table.ToString().c_str());

  // ---- Part 1b: incremental (merge) vs full-rebuild compaction cost ----
  bench::PrintBanner(
      "Fig 11a (extension): compaction cost — incremental merge vs full "
      "rebuild, per tail size",
      "the merge path rebuilds only tail-touched lists (O(tail + touched "
      "lists)); the rebuild path pays the whole catalogue every time");

  TablePrinter compaction_cost({"tail items", "merge ms", "lists touched",
                                "rebuild ms", "lists rebuilt",
                                "catalogue items"});
  const std::vector<size_t> merge_tails =
      smoke ? std::vector<size_t>{500, 2000}
            : std::vector<size_t>{1000, 5000, 25000};
  Rng merge_rng(17);
  for (const size_t tail : merge_tails) {
    // Same tail size through both paths, back to back on the same
    // (growing) catalogue: first fold it incrementally, then grow an
    // identical tail and fold it with a full rebuild.
    for (size_t i = 0; i < tail; ++i) {
      AMICI_CHECK_OK(bundle.engine
                         ->AddItem(RandomItem(
                             merge_rng,
                             bundle.engine->graph().num_users()))
                         .status());
    }
    CompactionOutcome merge_outcome;
    AMICI_CHECK_OK(bundle.engine->Compact(CompactionMode::kAlwaysMerge,
                                          &merge_outcome));
    for (size_t i = 0; i < tail; ++i) {
      AMICI_CHECK_OK(bundle.engine
                         ->AddItem(RandomItem(
                             merge_rng,
                             bundle.engine->graph().num_users()))
                         .status());
    }
    CompactionOutcome rebuild_outcome;
    AMICI_CHECK_OK(bundle.engine->Compact(CompactionMode::kAlwaysRebuild,
                                          &rebuild_outcome));
    compaction_cost.AddRow(
        {WithThousandsSeparators(tail), bench::Ms(merge_outcome.elapsed_ms),
         WithThousandsSeparators(merge_outcome.lists_touched),
         bench::Ms(rebuild_outcome.elapsed_ms),
         WithThousandsSeparators(rebuild_outcome.lists_touched),
         WithThousandsSeparators(bundle.engine->store().num_items())});
    std::fprintf(stderr, "[bench] merge-vs-rebuild tail=%zu done\n", tail);
  }
  std::printf("%s", compaction_cost.ToString().c_str());

  // ---- Part 2: concurrent ingest + compaction vs query tail latency ----
  bench::PrintBanner(
      "Fig 11b (extension): query latency DURING concurrent ingest and "
      "compaction [snapshot read/write split]",
      "ingest and compaction run concurrently with queries; the query "
      "path never blocks on the writer");

  const size_t num_users = bundle.engine->graph().num_users();
  TablePrinter concurrent({"phase", "hybrid mean ms", "hybrid p99 ms",
                           "writer side"});

  // Baseline: quiesced engine, freshly compacted.
  const auto baseline = bench::RunQueries(bundle.engine.get(),
                                          queries.value(),
                                          AlgorithmId::kHybrid);
  concurrent.AddRow({"idle writer", bench::Ms(baseline.mean),
                     bench::Ms(baseline.p99), "-"});

  // Queries while a writer thread ingests items at full speed.
  {
    const size_t kIngest = smoke ? 4000 : 25000;
    std::atomic<bool> stop{false};
    double ingest_ms = 0.0;
    std::thread writer([&] {
      Rng writer_rng(99);
      Stopwatch watch;
      for (size_t i = 0; i < kIngest; ++i) {
        AMICI_CHECK_OK(
            bundle.engine->AddItem(RandomItem(writer_rng, num_users))
                .status());
      }
      ingest_ms = watch.ElapsedMillis();
      stop.store(true, std::memory_order_release);
    });
    const auto during = QueryUntil(bundle.engine.get(), queries.value(),
                                   stop);
    writer.join();
    concurrent.AddRow(
        {StringPrintf("concurrent ingest (%zuk items)", kIngest / 1000),
         bench::Ms(during.mean), bench::Ms(during.p99),
         StringPrintf("%.0f ms for %zu AddItem", ingest_ms, kIngest)});
  }

  // Queries while Compact() folds the 25k-item tail into new indexes.
  {
    std::atomic<bool> stop{false};
    double compact_ms = 0.0;
    std::thread compactor([&] {
      Stopwatch watch;
      AMICI_CHECK_OK(bundle.engine->Compact());
      compact_ms = watch.ElapsedMillis();
      stop.store(true, std::memory_order_release);
    });
    const auto during = QueryUntil(bundle.engine.get(), queries.value(),
                                   stop);
    compactor.join();
    concurrent.AddRow({"concurrent Compact()", bench::Ms(during.mean),
                       bench::Ms(during.p99),
                       StringPrintf("%.0f ms build+publish", compact_ms)});
  }

  // Post-compaction floor for reference.
  const auto after = bench::RunQueries(bundle.engine.get(), queries.value(),
                                       AlgorithmId::kHybrid);
  concurrent.AddRow({"idle writer, compacted", bench::Ms(after.mean),
                     bench::Ms(after.p99), "-"});
  std::printf("%s", concurrent.ToString().c_str());

  // ---- Part 3: queued ingest through the pipeline (MPSC + writer) ------
  bench::PrintBanner(
      "Fig 11c (extension): query latency during QUEUED ingest "
      "[MPSC queue -> writer thread -> coalesced AddItems] + background "
      "compaction",
      "producers never touch the writer lock; the writer coalesces queued "
      "batches into few snapshot publishes; the scheduler keeps the tail "
      "bounded with zero manual Compact() calls");

  // The engine moves behind the service surface; parts 1–2 left it
  // compacted and warm.
  auto service =
      std::make_unique<LocalSearchService>(std::move(bundle.engine));
  SocialSearchEngine* engine = service->engine();

  const size_t kQueued = smoke ? 4000 : 25000;
  constexpr size_t kProducerBatch = 64;
  constexpr size_t kProducers = 2;
  TablePrinter queued({"phase", "hybrid mean ms", "hybrid p99 ms",
                       "writer side"});

  struct Phase {
    const char* label;
    BackpressureMode mode;
    bool auto_compact;
  };
  const Phase phases[] = {
      {"queued ingest (block)", BackpressureMode::kBlock, false},
      {"queued ingest (coalesce)", BackpressureMode::kCoalesce, false},
      {"queued ingest + auto-compaction", BackpressureMode::kCoalesce,
       true},
  };
  for (const Phase& phase : phases) {
    IngestPipeline::Options pipeline_options;
    pipeline_options.queue.capacity = 64;
    pipeline_options.queue.backpressure = phase.mode;
    AMICI_CHECK_OK(service->StartIngest(pipeline_options));
    const uint64_t compactions_before = service->auto_compactions();
    if (phase.auto_compact) {
      CompactionScheduler::Options compaction_options;
      compaction_options.policy =
          std::make_shared<AdaptiveCompactionPolicy>(
              AdaptiveCompactionPolicy::Options{
                  /*max_tail_items=*/kQueued / 4,
                  /*max_tail_scan_ms=*/2.0,
                  /*min_tail_items=*/256});
      compaction_options.poll_interval_ms = 5.0;
      AMICI_CHECK_OK(service->StartAutoCompaction(compaction_options));
    }

    std::atomic<bool> stop{false};
    std::atomic<size_t> enqueue_ms_x10{0};
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Rng producer_rng(1000 + p);
        Stopwatch watch;
        const size_t quota = kQueued / kProducers;
        size_t sent = 0;
        while (sent < quota) {
          const size_t batch_size = std::min(kProducerBatch, quota - sent);
          std::vector<Item> batch;
          batch.reserve(batch_size);
          for (size_t i = 0; i < batch_size; ++i) {
            batch.push_back(RandomItem(producer_rng, num_users));
          }
          const auto ticket = service->EnqueueItems(std::move(batch));
          AMICI_CHECK(ticket.ok()) << ticket.status().ToString();
          sent += batch_size;
        }
        enqueue_ms_x10.fetch_add(
            static_cast<size_t>(watch.ElapsedMillis() * 10.0));
      });
    }
    std::thread waiter([&] {
      for (auto& producer : producers) producer.join();
      AMICI_CHECK_OK(service->Flush());
      stop.store(true, std::memory_order_release);
    });
    const auto during = QueryUntil(engine, queries.value(), stop);
    waiter.join();

    const IngestCounters counters = service->ingest_counters();
    std::string writer_side = StringPrintf(
        "%llu batches -> %llu publishes (%llu coalesced), enqueue %.0f ms",
        static_cast<unsigned long long>(counters.batches_enqueued),
        static_cast<unsigned long long>(counters.apply_calls),
        static_cast<unsigned long long>(counters.batches_coalesced),
        static_cast<double>(enqueue_ms_x10.load()) / 10.0 / kProducers);
    if (phase.auto_compact) {
      AMICI_CHECK_OK(service->StopAutoCompaction());
      writer_side += StringPrintf(
          ", %llu auto-compactions",
          static_cast<unsigned long long>(service->auto_compactions() -
                                          compactions_before));
    }
    AMICI_CHECK_OK(service->StopIngest());
    queued.AddRow({phase.label, bench::Ms(during.mean),
                   bench::Ms(during.p99), writer_side});
    // Reset to a compacted floor between phases so each phase measures
    // its own tail regime.
    AMICI_CHECK_OK(service->Compact());
    std::fprintf(stderr, "[bench] %s done\n", phase.label);
  }
  queued.AddRow({"idle writer, compacted",
                 bench::Ms(bench::RunQueries(engine, queries.value(),
                                             AlgorithmId::kHybrid)
                               .mean),
                 "-", "-"});
  std::printf("%s", queued.ToString().c_str());

  // ---- Part 4: cold start — full re-ingest vs map + WAL replay ---------
  bench::PrintBanner(
      "Fig 11d (extension): restart cost — full re-ingest vs snapshot "
      "map + WAL tail replay, per restart tail size",
      "with a snapshot, restart is O(mapped bytes + tail) instead of "
      "O(catalogue): posting images map zero-copy, only the acknowledged "
      "tail replays through the normal ingest path (cold open defers "
      "payload checksums to page faults; production opens verify up "
      "front)");

  AMICI_CHECK_OK(service->Compact());
  const std::string snapshot_dir = "/tmp/amici_fig11_snapshot";
  {
    const std::string cleanup = "rm -rf " + snapshot_dir;
    (void)std::system(cleanup.c_str());
  }
  const auto saved = service->SaveSnapshot(snapshot_dir);
  AMICI_CHECK(saved.ok()) << saved.status().ToString();

  SearchRequest first_request;
  first_request.query = queries.value().front();
  TablePrinter cold({"restart tail", "map+replay ms", "1st query ms",
                     "re-ingest ms", "1st query ms", "restart speedup"});
  const std::vector<size_t> restart_tails =
      smoke ? std::vector<size_t>{0, 500, 2000}
            : std::vector<size_t>{0, 1000, 5000, 25000};
  Rng restart_rng(4242);
  size_t tail_added = 0;
  for (const size_t target : restart_tails) {
    // Grow the live service's WAL tail to `target` items past the save.
    for (; tail_added < target; ++tail_added) {
      AMICI_CHECK_OK(
          service->AddItem(RandomItem(restart_rng, num_users)).status());
    }

    // Best-of-N on both sides (single-shot restart timings are noisy on
    // a loaded machine; the min is the standard microbench estimator).
    constexpr int kOpenReps = 5;
    constexpr int kReingestReps = 3;
    persist::WalReplayStats replay;
    persist::SnapshotOpenOptions open_options;
    open_options.verify_checksums = false;  // cold path: faults verify lazily
    double open_ms = 0.0;
    std::unique_ptr<LocalSearchService> twin_service;
    for (int rep = 0; rep < kOpenReps; ++rep) {
      Stopwatch open_watch;
      auto twin = LocalSearchService::OpenSnapshot(
          snapshot_dir, LocalSearchService::Options(), open_options, &replay);
      AMICI_CHECK(twin.ok()) << twin.status().ToString();
      const double ms = open_watch.ElapsedMillis();
      if (rep == 0 || ms < open_ms) open_ms = ms;
      twin_service = std::move(twin).value();
    }
    Stopwatch twin_first_watch;
    AMICI_CHECK(twin_service->Search(first_request).ok());
    const double twin_first_ms = twin_first_watch.ElapsedMillis();

    // Re-ingest baseline: parse the durable row catalogue and graph,
    // then rebuild every index structure from scratch — what a restart
    // without the snapshot subsystem actually pays.
    const std::string durable_rows = SerializeItemStore(engine->store());
    const std::string durable_graph = SerializeGraph(*engine->snapshot()->graph);
    double build_ms = 0.0;
    std::unique_ptr<LocalSearchService> rebuilt_service;
    for (int rep = 0; rep < kReingestReps; ++rep) {
      Stopwatch build_watch;
      auto rows = DeserializeItemStore(durable_rows);
      AMICI_CHECK(rows.ok()) << rows.status().ToString();
      auto graph_copy = DeserializeGraph(durable_graph);
      AMICI_CHECK(graph_copy.ok()) << graph_copy.status().ToString();
      auto rebuilt = LocalSearchService::Build(std::move(graph_copy).value(),
                                               std::move(rows).value());
      AMICI_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
      const double ms = build_watch.ElapsedMillis();
      if (rep == 0 || ms < build_ms) build_ms = ms;
      rebuilt_service = std::move(rebuilt).value();
    }
    Stopwatch rebuilt_first_watch;
    AMICI_CHECK(rebuilt_service->Search(first_request).ok());
    const double rebuilt_first_ms = rebuilt_first_watch.ElapsedMillis();

    cold.AddRow(
        {StringPrintf("%s items (%llu wal records)",
                      WithThousandsSeparators(target).c_str(),
                      static_cast<unsigned long long>(replay.records_applied)),
         bench::Ms(open_ms), bench::Ms(twin_first_ms), bench::Ms(build_ms),
         bench::Ms(rebuilt_first_ms),
         StringPrintf("%.1fx", build_ms / std::max(open_ms, 1e-6))});
    std::fprintf(stderr, "[bench] cold-start tail=%zu done\n", target);
  }
  std::printf("%s", cold.ToString().c_str());
  {
    const std::string cleanup = "rm -rf " + snapshot_dir;
    (void)std::system(cleanup.c_str());
  }

  // ---- Part 5: per-edit latency — delta overlay vs O(E) CSR splice -----
  bench::PrintBanner(
      "Fig 11e (extension): friendship-edit latency — delta-overlay edit "
      "path vs the O(E) full-CSR splice it replaced, per graph size",
      "the overlay edit replaces two endpoint rows (O(deg u + deg v)) and "
      "stays flat as |E| grows; the splice copies the whole CSR per edit; "
      "'overlay max' includes the amortized fold spikes");

  TablePrinter edits({"edges", "users", "overlay p50 us", "overlay max us",
                      "splice p50 us", "splice max us", "p50 speedup"});
  const std::vector<size_t> edge_targets =
      smoke ? std::vector<size_t>{10000, 100000}
            : std::vector<size_t>{10000, 100000, 1000000};
  const int kEdits = smoke ? 100 : 200;
  for (const size_t target_edges : edge_targets) {
    // ER graph with mean degree ~10 hits the edge target with
    // users = edges / 5.
    const size_t users = target_edges / 5;
    Rng graph_rng(target_edges);
    SocialGraph graph = GenerateErdosRenyi(users, 10.0, &graph_rng);

    // Product edit path: the provider (1-partition router) — validate,
    // two row replacements, publish, fold when the policy fires.
    SharedProximityProvider::Options provider_options;
    provider_options.warm_top_n = 0;
    SharedProximityProvider provider(graph, provider_options);
    Rng edit_rng(target_edges + 1);
    LatencyRecorder overlay_us;
    for (int i = 0; i < kEdits; ++i) {
      const UserId u = static_cast<UserId>(edit_rng.UniformIndex(users));
      UserId v = static_cast<UserId>(edit_rng.UniformIndex(users));
      if (u == v) v = static_cast<UserId>((v + 1) % users);
      const bool adding = !provider.Acquire().graph->HasEdge(u, v);
      Stopwatch watch;
      const Status status = adding ? provider.AddFriendship(u, v)
                                   : provider.RemoveFriendship(u, v);
      AMICI_CHECK_OK(status);
      overlay_us.Record(watch.ElapsedMillis() * 1000.0);
    }

    // Baseline: the same edit stream as full-CSR splices (what every
    // edit cost before the overlay representation).
    Rng splice_rng(target_edges + 1);
    SocialGraph spliced = graph;
    LatencyRecorder splice_us;
    for (int i = 0; i < kEdits; ++i) {
      const UserId u = static_cast<UserId>(splice_rng.UniformIndex(users));
      UserId v = static_cast<UserId>(splice_rng.UniformIndex(users));
      if (u == v) v = static_cast<UserId>((v + 1) % users);
      const bool adding = !spliced.HasEdge(u, v);
      Stopwatch watch;
      spliced = RebuildCsrWithEdge(spliced, u, v, adding);
      splice_us.Record(watch.ElapsedMillis() * 1000.0);
    }
    AMICI_CHECK(spliced.num_edges() ==
                provider.Acquire().graph->num_edges());

    const LatencySummary overlay = overlay_us.Summarize();
    const LatencySummary splice = splice_us.Summarize();
    edits.AddRow({WithThousandsSeparators(graph.num_edges()),
                  WithThousandsSeparators(users),
                  StringPrintf("%.1f", overlay.p50),
                  StringPrintf("%.1f", overlay.max),
                  StringPrintf("%.1f", splice.p50),
                  StringPrintf("%.1f", splice.max),
                  StringPrintf("%.0fx", splice.p50 /
                                            std::max(overlay.p50, 1e-3))});
    std::fprintf(stderr, "[bench] edit-latency edges=%zu done\n",
                 target_edges);
  }
  std::printf("%s", edits.ToString().c_str());
  return 0;
}
