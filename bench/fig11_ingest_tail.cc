// Fig 11 (extension experiment) — the cost of freshness: query latency as
// the un-indexed ingest tail grows, and the effect of Compact(). The
// LSM-flavoured main-index + tail design keeps fresh items queryable at
// the price of an exhaustive tail scan; this quantifies when compaction
// pays.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 11 (extension): hybrid latency vs un-indexed tail size "
      "[medium dataset, alpha=0.5, k=10]",
      "latency grows linearly with the tail; compaction restores the "
      "indexed baseline");

  bench::EngineBundle bundle = bench::BuildEngine(MediumDataset());
  QueryWorkloadConfig workload;
  workload.num_queries = 60;
  workload.k = 10;
  workload.alpha = 0.5;
  workload.seed = 1111;
  const auto queries = GenerateQueries(bundle.workload_view, workload);
  if (!queries.ok()) return 1;
  bench::WarmProximityCache(bundle.engine.get(), queries.value());

  Rng rng(5);
  TablePrinter table({"tail items", "hybrid mean ms", "hybrid p99 ms"});
  size_t added = 0;
  for (const size_t target : {0, 1000, 5000, 10000, 25000, 50000}) {
    while (added < target) {
      Item item;
      item.owner = static_cast<UserId>(
          rng.UniformIndex(bundle.engine->graph().num_users()));
      item.tags = {static_cast<TagId>(rng.UniformIndex(10000))};
      item.quality = static_cast<float>(rng.UniformDouble());
      if (!bundle.engine->AddItem(item).ok()) return 1;
      ++added;
    }
    const auto summary = bench::RunQueries(bundle.engine.get(),
                                           queries.value(),
                                           AlgorithmId::kHybrid);
    table.AddRow({WithThousandsSeparators(target), bench::Ms(summary.mean),
                  bench::Ms(summary.p99)});
    std::fprintf(stderr, "[bench] tail=%zu done\n", target);
  }

  if (!bundle.engine->Compact().ok()) return 1;
  const auto compacted = bench::RunQueries(bundle.engine.get(),
                                           queries.value(),
                                           AlgorithmId::kHybrid);
  table.AddRow({"after Compact()", bench::Ms(compacted.mean),
                bench::Ms(compacted.p99)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
