// Fig 11 (extension experiment) — the cost of freshness, in two parts.
//
// Part 1 (serial): query latency as the un-indexed ingest tail grows, and
// the effect of Compact(). The LSM-flavoured main-index + tail design
// keeps fresh items queryable at the price of an exhaustive tail scan;
// this quantifies when compaction pays.
//
// Part 2 (concurrent): the snapshot read/write split at work — a writer
// thread ingests at full speed (with a mid-stream Compact) while this
// thread keeps querying. Reported is the query latency DURING ingest and
// DURING compaction: no external exclusion, no stop-the-world.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

namespace {

Item RandomItem(Rng& rng, size_t num_users) {
  Item item;
  item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
  item.tags = {static_cast<TagId>(rng.UniformIndex(10000))};
  item.quality = static_cast<float>(rng.UniformDouble());
  return item;
}

/// Queries in a loop until `stop` flips, recording per-query latency.
LatencySummary QueryUntil(SocialSearchEngine* engine,
                          const std::vector<SocialQuery>& queries,
                          const std::atomic<bool>& stop) {
  LatencyRecorder recorder;
  while (!stop.load(std::memory_order_acquire)) {
    for (const SocialQuery& query : queries) {
      Stopwatch watch;
      const auto result = engine->Query(query, AlgorithmId::kHybrid);
      AMICI_CHECK(result.ok()) << result.status().ToString();
      recorder.Record(watch.ElapsedMillis());
      if (stop.load(std::memory_order_acquire)) break;
    }
  }
  return recorder.Summarize();
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Fig 11 (extension): hybrid latency vs un-indexed tail size "
      "[medium dataset, alpha=0.5, k=10]",
      "latency grows linearly with the tail; compaction restores the "
      "indexed baseline");

  bench::EngineBundle bundle = bench::BuildEngine(MediumDataset());
  QueryWorkloadConfig workload;
  workload.num_queries = 60;
  workload.k = 10;
  workload.alpha = 0.5;
  workload.seed = 1111;
  const auto queries = GenerateQueries(bundle.workload_view, workload);
  if (!queries.ok()) return 1;
  bench::WarmProximityCache(bundle.engine.get(), queries.value());

  Rng rng(5);
  TablePrinter table({"tail items", "hybrid mean ms", "hybrid p99 ms"});
  size_t added = 0;
  for (const size_t target : {0, 1000, 5000, 10000, 25000, 50000}) {
    while (added < target) {
      Item item;
      item.owner = static_cast<UserId>(
          rng.UniformIndex(bundle.engine->graph().num_users()));
      item.tags = {static_cast<TagId>(rng.UniformIndex(10000))};
      item.quality = static_cast<float>(rng.UniformDouble());
      if (!bundle.engine->AddItem(item).ok()) return 1;
      ++added;
    }
    const auto summary = bench::RunQueries(bundle.engine.get(),
                                           queries.value(),
                                           AlgorithmId::kHybrid);
    table.AddRow({WithThousandsSeparators(target), bench::Ms(summary.mean),
                  bench::Ms(summary.p99)});
    std::fprintf(stderr, "[bench] tail=%zu done\n", target);
  }

  if (!bundle.engine->Compact().ok()) return 1;
  const auto compacted = bench::RunQueries(bundle.engine.get(),
                                           queries.value(),
                                           AlgorithmId::kHybrid);
  table.AddRow({"after Compact()", bench::Ms(compacted.mean),
                bench::Ms(compacted.p99)});
  std::printf("%s", table.ToString().c_str());

  // ---- Part 2: concurrent ingest + compaction vs query tail latency ----
  bench::PrintBanner(
      "Fig 11b (extension): query latency DURING concurrent ingest and "
      "compaction [snapshot read/write split]",
      "ingest and compaction run concurrently with queries; the query "
      "path never blocks on the writer");

  const size_t num_users = bundle.engine->graph().num_users();
  TablePrinter concurrent({"phase", "hybrid mean ms", "hybrid p99 ms",
                           "writer side"});

  // Baseline: quiesced engine, freshly compacted.
  const auto baseline = bench::RunQueries(bundle.engine.get(),
                                          queries.value(),
                                          AlgorithmId::kHybrid);
  concurrent.AddRow({"idle writer", bench::Ms(baseline.mean),
                     bench::Ms(baseline.p99), "-"});

  // Queries while a writer thread ingests 25k items at full speed.
  {
    constexpr size_t kIngest = 25000;
    std::atomic<bool> stop{false};
    double ingest_ms = 0.0;
    std::thread writer([&] {
      Rng writer_rng(99);
      Stopwatch watch;
      for (size_t i = 0; i < kIngest; ++i) {
        AMICI_CHECK_OK(
            bundle.engine->AddItem(RandomItem(writer_rng, num_users))
                .status());
      }
      ingest_ms = watch.ElapsedMillis();
      stop.store(true, std::memory_order_release);
    });
    const auto during = QueryUntil(bundle.engine.get(), queries.value(),
                                   stop);
    writer.join();
    concurrent.AddRow(
        {"concurrent ingest (25k items)", bench::Ms(during.mean),
         bench::Ms(during.p99),
         StringPrintf("%.0f ms for 25k AddItem", ingest_ms)});
  }

  // Queries while Compact() folds the 25k-item tail into new indexes.
  {
    std::atomic<bool> stop{false};
    double compact_ms = 0.0;
    std::thread compactor([&] {
      Stopwatch watch;
      AMICI_CHECK_OK(bundle.engine->Compact());
      compact_ms = watch.ElapsedMillis();
      stop.store(true, std::memory_order_release);
    });
    const auto during = QueryUntil(bundle.engine.get(), queries.value(),
                                   stop);
    compactor.join();
    concurrent.AddRow({"concurrent Compact()", bench::Ms(during.mean),
                       bench::Ms(during.p99),
                       StringPrintf("%.0f ms build+publish", compact_ms)});
  }

  // Post-compaction floor for reference.
  const auto after = bench::RunQueries(bundle.engine.get(), queries.value(),
                                       AlgorithmId::kHybrid);
  concurrent.AddRow({"idle writer, compacted", bench::Ms(after.mean),
                     bench::Ms(after.p99), "-"});
  std::printf("%s", concurrent.ToString().c_str());
  return 0;
}
