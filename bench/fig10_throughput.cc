// Fig 10 — concurrent throughput through the SearchService surface, on
// two axes:
//
//  (a) queries per second as CLIENT threads scale against the local
//      backend — the engine's internal synchronization (proximity cache +
//      stats) under read contention, as in the original figure;
//  (b) queries per second as the SHARD count scales under a fixed client
//      load — the fan-out/merge router's scaling curve (--shards=a,b,c
//      overrides the default 1,2,4,8 sweep);
//  (c) merge-scan throughput with block-max pruning on vs off, with the
//      blocks_decoded/blocks_skipped counters read off the public
//      SearchResponse::stats surface.
//
//   ./build/bench/bench_fig10_throughput [--shards=N]

#include <atomic>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

namespace {

struct QpsMeasurement {
  double qps = 0.0;  // 0 on any query failure
  SearchStats stats;  // summed over every response (MergeSearchStats)
};

/// Hammers `service` from `threads` client threads, `queries_per_thread`
/// queries each. Response stats are accumulated per thread and merged at
/// join, so the measurement itself adds no cross-thread contention.
QpsMeasurement MeasureQpsWithStats(SearchService* service,
                                   const std::vector<SocialQuery>& queries,
                                   int threads, int queries_per_thread,
                                   std::optional<AlgorithmId> algorithm) {
  std::atomic<int> errors{0};
  std::mutex merge_mutex;
  QpsMeasurement measurement;
  Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      SearchStats local;
      for (int i = 0; i < queries_per_thread; ++i) {
        SearchRequest request;
        request.query = queries[(static_cast<size_t>(t) * 37 + i) %
                                queries.size()];
        request.algorithm = algorithm;
        const auto response = service->Search(request);
        if (!response.ok()) {
          errors.fetch_add(1);
          continue;
        }
        MergeSearchStats(response.value().stats, &local);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      MergeSearchStats(local, &measurement.stats);
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed = watch.ElapsedSeconds();
  if (errors.load() != 0) {
    std::fprintf(stderr, "[bench] %d errors!\n", errors.load());
    return {};
  }
  measurement.qps =
      static_cast<double>(threads) * queries_per_thread / elapsed;
  return measurement;
}

/// Backend-default-algorithm (hybrid) variant reporting QPS only.
double MeasureQps(SearchService* service,
                  const std::vector<SocialQuery>& queries, int threads,
                  int queries_per_thread) {
  return MeasureQpsWithStats(service, queries, threads, queries_per_thread,
                             std::nullopt)
      .qps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner(
      "Fig 10: hybrid query throughput vs client threads and vs shards "
      "[medium dataset, alpha=0.5, k=10]",
      "read-only throughput scales near-linearly until memory bandwidth "
      "saturates; sharding adds fan-out parallelism per request");

  QueryWorkloadConfig workload;
  workload.num_queries = 256;
  workload.k = 10;
  workload.alpha = 0.5;
  workload.seed = 99;

  // --- (a) client-thread sweep on the local backend. -------------------
  {
    bench::ServiceBundle bundle = bench::BuildService(MediumDataset(), 1);
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    // Warm the proximity cache once so every configuration sees the same
    // steady state.
    bench::WarmService(bundle.service.get(), queries.value());

    TablePrinter table({"threads", "total queries", "elapsed s", "QPS",
                        "speedup"});
    double baseline_qps = 0.0;
    for (const int threads : {1, 2, 4, 8, 16}) {
      const int queries_per_thread = 2000;
      Stopwatch watch;
      const double qps = MeasureQps(bundle.service.get(), queries.value(),
                                    threads, queries_per_thread);
      if (qps == 0.0) return 1;
      if (baseline_qps == 0.0) baseline_qps = qps;
      const double total =
          static_cast<double>(threads) * queries_per_thread;
      table.AddRow({std::to_string(threads), StringPrintf("%.0f", total),
                    StringPrintf("%.2f", watch.ElapsedSeconds()),
                    StringPrintf("%.0f", qps),
                    StringPrintf("%.2fx", qps / baseline_qps)});
      std::fprintf(stderr, "[bench] %d threads done\n", threads);
    }
    std::printf("%s", table.ToString().c_str());
  }

  // --- (b) shard sweep at a fixed client load. -------------------------
  std::vector<size_t> shard_counts{1, 2, 4, 8};
  if (const size_t forced = bench::ParseShardsFlag(argc, argv, 0);
      forced != 0) {
    shard_counts = {forced};
  }
  const int kClientThreads = 8;
  const int kQueriesPerThread = 1000;
  TablePrinter shard_table(
      {"shards", "backend", "QPS", "speedup vs 1 shard"});
  double one_shard_qps = 0.0;
  for (const size_t shards : shard_counts) {
    bench::ServiceBundle bundle = bench::BuildService(MediumDataset(), shards);
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmService(bundle.service.get(), queries.value());
    const double qps = MeasureQps(bundle.service.get(), queries.value(),
                                  kClientThreads, kQueriesPerThread);
    if (qps == 0.0) return 1;
    if (shards == 1) one_shard_qps = qps;
    // A --shards=N override skips the 1-shard run: no baseline, no ratio.
    shard_table.AddRow({std::to_string(shards),
                        std::string(bundle.service->backend_name()),
                        StringPrintf("%.0f", qps),
                        one_shard_qps > 0.0
                            ? StringPrintf("%.2fx", qps / one_shard_qps)
                            : std::string("n/a")});
    std::fprintf(stderr, "[bench] %zu shards done\n", shards);
  }
  std::printf("\n%s", shard_table.ToString().c_str());

  // --- (c) block-max pruning on vs off under concurrent load. ----------
  // Merge-scan queries (the posting-list-walking strategy) against twin
  // local backends; the traversal counters arrive through the public
  // SearchResponse::stats surface, end to end.
  {
    TablePrinter bmax_table(
        {"block-max", "QPS", "blocks decoded", "blocks skipped"});
    for (const bool enabled : {true, false}) {
      SocialSearchEngine::Options options;
      options.index_options.posting_options.enable_block_max = enabled;
      bench::ServiceBundle bundle =
          bench::BuildService(MediumDataset(), 1, options);
      const auto queries = GenerateQueries(bundle.workload_view, workload);
      if (!queries.ok()) return 1;
      bench::WarmService(bundle.service.get(), queries.value());
      const QpsMeasurement measured =
          MeasureQpsWithStats(bundle.service.get(), queries.value(), 4, 2000,
                              AlgorithmId::kMergeScan);
      if (measured.qps == 0.0) return 1;
      bmax_table.AddRow(
          {enabled ? "on" : "off", StringPrintf("%.0f", measured.qps),
           std::to_string(measured.stats.aggregation.blocks_decoded),
           std::to_string(measured.stats.aggregation.blocks_skipped)});
      std::fprintf(stderr, "[bench] block-max %s done\n",
                   enabled ? "on" : "off");
    }
    std::printf("\n%s", bmax_table.ToString().c_str());
  }
  return 0;
}
