// Fig 10 — concurrent read-only throughput: queries per second as client
// threads scale, exercising the engine's internal synchronization
// (proximity cache + stats) under contention.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 10: hybrid query throughput vs client threads "
      "[medium dataset, alpha=0.5, k=10]",
      "read-only throughput scales near-linearly until memory bandwidth "
      "saturates; the shared proximity cache helps rather than hurts");

  bench::EngineBundle bundle = bench::BuildEngine(MediumDataset());
  QueryWorkloadConfig workload;
  workload.num_queries = 256;
  workload.k = 10;
  workload.alpha = 0.5;
  workload.seed = 99;
  const auto queries = GenerateQueries(bundle.workload_view, workload);
  if (!queries.ok()) return 1;

  // Warm the proximity cache once so every configuration sees the same
  // steady state.
  for (const SocialQuery& query : queries.value()) {
    (void)bundle.engine->Query(query, AlgorithmId::kHybrid);
  }

  TablePrinter table({"threads", "total queries", "elapsed s", "QPS",
                      "speedup"});
  double baseline_qps = 0.0;
  for (const int threads : {1, 2, 4, 8, 16}) {
    const int queries_per_thread = 2000;
    std::atomic<int> errors{0};
    Stopwatch watch;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < queries_per_thread; ++i) {
          const SocialQuery& query =
              queries.value()[(static_cast<size_t>(t) * 37 + i) %
                              queries.value().size()];
          if (!bundle.engine->Query(query, AlgorithmId::kHybrid).ok()) {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const double elapsed = watch.ElapsedSeconds();
    const double total =
        static_cast<double>(threads) * queries_per_thread;
    const double qps = total / elapsed;
    if (baseline_qps == 0.0) baseline_qps = qps;
    if (errors.load() != 0) {
      std::fprintf(stderr, "[bench] %d errors!\n", errors.load());
      return 1;
    }
    table.AddRow({std::to_string(threads),
                  StringPrintf("%.0f", total),
                  StringPrintf("%.2f", elapsed), StringPrintf("%.0f", qps),
                  StringPrintf("%.2fx", qps / baseline_qps)});
    std::fprintf(stderr, "[bench] %d threads done\n", threads);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
