// Table 3 — ablation of the design choices DESIGN.md calls out:
//   * adaptive pull scheduling (hybrid) vs static biases
//   * the proximity cache
//   * posting-list skip pointers (conjunctive AND queries)
//   * block-max pruning (conjunctive AND queries; results invariant)
//   * impact-ordered lists (memory vs TA availability)

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "proximity/ppr_forward_push.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Table 3: ablation study  [medium dataset, alpha=0.5, k=10]",
      "each design choice carries its weight: removing it costs latency "
      "or memory");

  const DatasetConfig config = MediumDataset();
  TablePrinter table({"configuration", "workload", "mean ms", "p99 ms",
                      "index mem"});

  // --- Baseline engine: everything on.
  bench::EngineBundle base = bench::BuildEngine(config);
  QueryWorkloadConfig any_workload;
  any_workload.num_queries = 80;
  any_workload.k = 10;
  any_workload.alpha = 0.5;
  any_workload.seed = 123;
  const auto any_queries =
      GenerateQueries(base.workload_view, any_workload).value();

  QueryWorkloadConfig all_workload = any_workload;
  all_workload.mode = MatchMode::kAll;
  all_workload.max_tags_per_query = 3;
  all_workload.seed = 124;
  const auto all_queries =
      GenerateQueries(base.workload_view, all_workload).value();
  bench::WarmProximityCache(base.engine.get(), any_queries);
  bench::WarmProximityCache(base.engine.get(), all_queries);

  const std::string base_mem =
      HumanBytes(base.engine->inverted_index().MemoryBytes());

  auto add_row = [&table](const std::string& label,
                          const std::string& workload,
                          const LatencySummary& summary,
                          const std::string& mem) {
    table.AddRow({label, workload, bench::Ms(summary.mean),
                  bench::Ms(summary.p99), mem});
  };

  // Adaptive vs static pull scheduling.
  add_row("hybrid (adaptive pulls)", "OR",
          bench::RunQueries(base.engine.get(), any_queries,
                            AlgorithmId::kHybrid),
          base_mem);
  add_row("  - static content bias", "OR",
          bench::RunQueries(base.engine.get(), any_queries,
                            AlgorithmId::kContentFirst),
          base_mem);
  add_row("  - static social bias", "OR",
          bench::RunQueries(base.engine.get(), any_queries,
                            AlgorithmId::kSocialFirst),
          base_mem);
  add_row("  - NRA (no random access)", "OR",
          bench::RunQueries(base.engine.get(), any_queries,
                            AlgorithmId::kNra),
          base_mem);

  // Proximity cache off (capacity 1 ≈ always miss across users).
  {
    SocialSearchEngine::Options options;
    options.proximity_cache_capacity = 1;
    bench::EngineBundle no_cache = bench::BuildEngine(config, options);
    add_row("  - proximity cache off", "OR",
            bench::RunQueries(no_cache.engine.get(), any_queries,
                              AlgorithmId::kHybrid),
            base_mem);
  }

  // Skip pointers: conjunctive (AND) merge-scan with and without.
  add_row("merge-scan AND (skips on)", "AND",
          bench::RunQueries(base.engine.get(), all_queries,
                            AlgorithmId::kMergeScan),
          base_mem);
  {
    SocialSearchEngine::Options options;
    options.index_options.posting_options.enable_skips = false;
    bench::EngineBundle no_skips = bench::BuildEngine(config, options);
    add_row("  - skip pointers off", "AND",
            bench::RunQueries(no_skips.engine.get(), all_queries,
                              AlgorithmId::kMergeScan),
            HumanBytes(no_skips.engine->inverted_index().MemoryBytes()));
  }

  // Block-max pruning off: every block's stored bound saturates to the
  // list max, so conjunctive merge-scan decodes blocks it could have
  // proven irrelevant. Results are identical (the invariance suite
  // asserts it); only traversal work moves.
  {
    SocialSearchEngine::Options options;
    options.index_options.posting_options.enable_block_max = false;
    bench::EngineBundle no_bmax = bench::BuildEngine(config, options);
    add_row("  - block-max off", "AND",
            bench::RunQueries(no_bmax.engine.get(), all_queries,
                              AlgorithmId::kMergeScan),
            HumanBytes(no_bmax.engine->inverted_index().MemoryBytes()));
  }

  // Impact-ordered lists off: TA unavailable, merge-scan carries OR
  // queries; the saved memory is the other side of the trade.
  {
    SocialSearchEngine::Options options;
    options.index_options.build_impact_ordered = false;
    bench::EngineBundle lean = bench::BuildEngine(config, options);
    add_row("  - impact lists off (merge-scan)", "OR",
            bench::RunQueries(lean.engine.get(), any_queries,
                              AlgorithmId::kMergeScan),
            HumanBytes(lean.engine->inverted_index().MemoryBytes()));
  }

  std::printf("%s", table.ToString().c_str());
  return 0;
}
