#ifndef AMICI_BENCH_BENCH_COMMON_H_
#define AMICI_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "service/search_service.h"
#include "util/stats.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace bench {

/// An engine plus a dataset copy usable for workload generation (the
/// engine consumes the original graph/store).
struct EngineBundle {
  std::unique_ptr<SocialSearchEngine> engine;
  Dataset workload_view;
};

/// A SearchService (local when shards == 1, sharded otherwise) plus a
/// dataset copy usable for workload generation.
struct ServiceBundle {
  std::unique_ptr<SearchService> service;
  Dataset workload_view;
};

/// Generates the dataset, builds the engine, and keeps a regenerated view
/// for query synthesis. Progress goes to stderr; stdout stays clean for
/// the result tables. Aborts on error (benches have no recovery story).
EngineBundle BuildEngine(const DatasetConfig& config,
                         SocialSearchEngine::Options options = {});

/// Service-level counterpart of BuildEngine: `shards` selects the backend
/// (1 = LocalSearchService, >1 = ShardedSearchService over that many
/// hash partitions).
ServiceBundle BuildService(const DatasetConfig& config, size_t shards,
                           SocialSearchEngine::Options options = {});

/// Runs every query through `algorithm` and reports the latency summary.
/// `repeats` multiplies the workload to stabilize timings. When
/// `accumulated` is non-null, every query's SearchStats is summed into it
/// (MergeSearchStats semantics) — how the figure benches surface the
/// blocks_decoded/blocks_skipped traversal counters.
LatencySummary RunQueries(SocialSearchEngine* engine,
                          const std::vector<SocialQuery>& queries,
                          AlgorithmId algorithm, int repeats = 1,
                          SearchStats* accumulated = nullptr);

/// Service-level counterpart of RunQueries; `accumulated` sums the
/// shard-merged SearchResponse::stats.
LatencySummary RunServiceQueries(SearchService* service,
                                 const std::vector<SocialQuery>& queries,
                                 AlgorithmId algorithm, int repeats = 1,
                                 SearchStats* accumulated = nullptr);

/// Populates the proximity cache for every query user so that the first
/// measured algorithm does not pay all the cache misses.
void WarmProximityCache(SocialSearchEngine* engine,
                        const std::vector<SocialQuery>& queries);

/// Service-level warm-up: one query per workload entry (hybrid), enough
/// to populate every shard's proximity cache for the query users.
void WarmService(SearchService* service,
                 const std::vector<SocialQuery>& queries);

/// Parses a `--shards=N` (or `--shards N`) command-line override; returns
/// `fallback` when absent or malformed.
size_t ParseShardsFlag(int argc, char** argv, size_t fallback);

/// Prints the standard bench banner: which experiment this reproduces and
/// the expected shape of the result.
void PrintBanner(const std::string& experiment, const std::string& claim);

/// "%.3f"-formatted helper.
std::string Ms(double milliseconds);

}  // namespace bench
}  // namespace amici

#endif  // AMICI_BENCH_BENCH_COMMON_H_
