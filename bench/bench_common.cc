#include "bench_common.h"

#include <cstdio>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace amici {
namespace bench {

EngineBundle BuildEngine(const DatasetConfig& config,
                         SocialSearchEngine::Options options) {
  Stopwatch watch;
  auto dataset = GenerateDataset(config);
  AMICI_CHECK(dataset.ok()) << dataset.status().ToString();
  auto view = GenerateDataset(config);
  AMICI_CHECK(view.ok()) << view.status().ToString();
  const double generate_ms = watch.ElapsedMillis();

  watch.Restart();
  auto engine = SocialSearchEngine::Build(std::move(dataset.value().graph),
                                          std::move(dataset.value().store),
                                          std::move(options));
  AMICI_CHECK(engine.ok()) << engine.status().ToString();
  std::fprintf(stderr,
               "[bench] dataset '%s': %zu users, %zu items "
               "(gen %.0f ms, build %.0f ms)\n",
               config.name.c_str(), view.value().graph.num_users(),
               view.value().store.num_items(), generate_ms,
               watch.ElapsedMillis());

  EngineBundle bundle;
  bundle.engine = std::move(engine).value();
  bundle.workload_view = std::move(view).value();
  return bundle;
}

LatencySummary RunQueries(SocialSearchEngine* engine,
                          const std::vector<SocialQuery>& queries,
                          AlgorithmId algorithm, int repeats) {
  LatencyRecorder recorder;
  for (int r = 0; r < repeats; ++r) {
    for (const SocialQuery& query : queries) {
      Stopwatch watch;
      const auto result = engine->Query(query, algorithm);
      AMICI_CHECK(result.ok())
          << AlgorithmName(algorithm) << ": " << result.status().ToString();
      recorder.Record(watch.ElapsedMillis());
    }
  }
  return recorder.Summarize();
}

void WarmProximityCache(SocialSearchEngine* engine,
                        const std::vector<SocialQuery>& queries) {
  for (const SocialQuery& query : queries) {
    (void)engine->proximity_cache().Get(engine->graph(), query.user);
  }
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf(
      "================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim under test: %s\n", claim.c_str());
  std::printf(
      "================================================================\n");
}

std::string Ms(double milliseconds) {
  return StringPrintf("%.3f", milliseconds);
}

}  // namespace bench
}  // namespace amici
