#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "service/local_search_service.h"
#include "service/sharded_search_service.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace amici {
namespace bench {

EngineBundle BuildEngine(const DatasetConfig& config,
                         SocialSearchEngine::Options options) {
  Stopwatch watch;
  auto dataset = GenerateDataset(config);
  AMICI_CHECK(dataset.ok()) << dataset.status().ToString();
  auto view = GenerateDataset(config);
  AMICI_CHECK(view.ok()) << view.status().ToString();
  const double generate_ms = watch.ElapsedMillis();

  watch.Restart();
  auto engine = SocialSearchEngine::Build(std::move(dataset.value().graph),
                                          std::move(dataset.value().store),
                                          std::move(options));
  AMICI_CHECK(engine.ok()) << engine.status().ToString();
  std::fprintf(stderr,
               "[bench] dataset '%s': %zu users, %zu items "
               "(gen %.0f ms, build %.0f ms)\n",
               config.name.c_str(), view.value().graph.num_users(),
               view.value().store.num_items(), generate_ms,
               watch.ElapsedMillis());

  EngineBundle bundle;
  bundle.engine = std::move(engine).value();
  bundle.workload_view = std::move(view).value();
  return bundle;
}

ServiceBundle BuildService(const DatasetConfig& config, size_t shards,
                           SocialSearchEngine::Options options) {
  Stopwatch watch;
  auto dataset = GenerateDataset(config);
  AMICI_CHECK(dataset.ok()) << dataset.status().ToString();
  auto view = GenerateDataset(config);
  AMICI_CHECK(view.ok()) << view.status().ToString();
  const double generate_ms = watch.ElapsedMillis();

  watch.Restart();
  ServiceBundle bundle;
  if (shards <= 1) {
    LocalSearchService::Options local_options;
    local_options.engine = std::move(options);
    auto service = LocalSearchService::Build(std::move(dataset.value().graph),
                                             std::move(dataset.value().store),
                                             std::move(local_options));
    AMICI_CHECK(service.ok()) << service.status().ToString();
    bundle.service = std::move(service).value();
  } else {
    ShardedSearchService::Options sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.engine = std::move(options);
    auto service = ShardedSearchService::Build(
        std::move(dataset.value().graph), std::move(dataset.value().store),
        std::move(sharded_options));
    AMICI_CHECK(service.ok()) << service.status().ToString();
    bundle.service = std::move(service).value();
  }
  std::fprintf(stderr,
               "[bench] dataset '%s': %zu users, %zu items, backend %s "
               "(gen %.0f ms, build %.0f ms)\n",
               config.name.c_str(), view.value().graph.num_users(),
               view.value().store.num_items(),
               std::string(bundle.service->backend_name()).c_str(),
               generate_ms, watch.ElapsedMillis());
  bundle.workload_view = std::move(view).value();
  return bundle;
}

LatencySummary RunQueries(SocialSearchEngine* engine,
                          const std::vector<SocialQuery>& queries,
                          AlgorithmId algorithm, int repeats,
                          SearchStats* accumulated) {
  LatencyRecorder recorder;
  for (int r = 0; r < repeats; ++r) {
    for (const SocialQuery& query : queries) {
      Stopwatch watch;
      const auto result = engine->Query(query, algorithm);
      AMICI_CHECK(result.ok())
          << AlgorithmName(algorithm) << ": " << result.status().ToString();
      recorder.Record(watch.ElapsedMillis());
      if (accumulated != nullptr) {
        MergeSearchStats(result.value().stats, accumulated);
      }
    }
  }
  return recorder.Summarize();
}

LatencySummary RunServiceQueries(SearchService* service,
                                 const std::vector<SocialQuery>& queries,
                                 AlgorithmId algorithm, int repeats,
                                 SearchStats* accumulated) {
  LatencyRecorder recorder;
  for (int r = 0; r < repeats; ++r) {
    for (const SocialQuery& query : queries) {
      SearchRequest request;
      request.query = query;
      request.algorithm = algorithm;
      Stopwatch watch;
      const auto response = service->Search(request);
      AMICI_CHECK(response.ok())
          << AlgorithmName(algorithm) << ": "
          << response.status().ToString();
      recorder.Record(watch.ElapsedMillis());
      if (accumulated != nullptr) {
        MergeSearchStats(response.value().stats, accumulated);
      }
    }
  }
  return recorder.Summarize();
}

void WarmProximityCache(SocialSearchEngine* engine,
                        const std::vector<SocialQuery>& queries) {
  const auto snap = engine->snapshot();
  for (const SocialQuery& query : queries) {
    (void)engine->proximity().GetProximity(*snap->graph, query.user,
                                           snap->graph_version);
  }
}

void WarmService(SearchService* service,
                 const std::vector<SocialQuery>& queries) {
  for (const SocialQuery& query : queries) {
    SearchRequest request;
    request.query = query;
    (void)service->Search(request);
  }
}

size_t ParseShardsFlag(int argc, char** argv, size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      const long parsed = std::atol(arg + 9);
      if (parsed >= 1) return static_cast<size_t>(parsed);
    } else if (std::strcmp(arg, "--shards") == 0 && i + 1 < argc) {
      const long parsed = std::atol(argv[i + 1]);
      if (parsed >= 1) return static_cast<size_t>(parsed);
    }
  }
  return fallback;
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf(
      "================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim under test: %s\n", claim.c_str());
  std::printf(
      "================================================================\n");
}

std::string Ms(double milliseconds) {
  return StringPrintf("%.3f", milliseconds);
}

}  // namespace bench
}  // namespace amici
