// Fig 7 — PPR approximation quality vs cost, on the raw proximity level:
// (a) forward push as epsilon shrinks, (b) Monte-Carlo as the walk budget
// grows. Quality = precision@10 of the proximity ranking against exact
// power-iteration PPR.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "proximity/ppr_forward_push.h"
#include "proximity/ppr_monte_carlo.h"
#include "proximity/ppr_power_iteration.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/metrics.h"

using namespace amici;

namespace {

std::vector<ScoredItem> TopUsers(const ProximityVector& vector, size_t k) {
  std::vector<ScoredItem> out;
  for (size_t i = 0; i < vector.ranked().size() && i < k; ++i) {
    out.push_back({vector.ranked()[i].user, vector.ranked()[i].score});
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Fig 7: PPR approximation quality vs cost  [medium graph, 20 sources]",
      "push precision rises as epsilon shrinks; Monte-Carlo precision rises "
      "with walks; both approach exact PPR at a fraction of its cost");

  auto dataset = GenerateDataset(MediumDataset());
  if (!dataset.ok()) return 1;
  const SocialGraph& graph = dataset.value().graph;

  // Source users: spread across the id space.
  std::vector<UserId> sources;
  for (size_t i = 0; i < 20; ++i) {
    sources.push_back(static_cast<UserId>(i * graph.num_users() / 20));
  }

  std::fprintf(stderr, "[bench] computing exact PPR for %zu sources...\n",
               sources.size());
  const PprPowerIteration exact(0.15, 60, 1e-8, 1e-7);
  std::vector<std::vector<ScoredItem>> truth;
  Stopwatch exact_watch;
  for (const UserId source : sources) {
    truth.push_back(TopUsers(exact.Compute(graph, source), 10));
  }
  const double exact_ms =
      exact_watch.ElapsedMillis() / static_cast<double>(sources.size());

  TablePrinter table({"method", "parameter", "ms/source",
                      "precision@10 vs exact"});
  table.AddRow({"power-iteration", "(reference)",
                StringPrintf("%.3f", exact_ms), "1.000"});

  for (const double epsilon : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    const PprForwardPush push(0.15, epsilon);
    Stopwatch watch;
    double precision = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      const auto approx = TopUsers(push.Compute(graph, sources[s]), 10);
      precision += PrecisionAtK(truth[s], approx, 10);
    }
    table.AddRow({"forward-push", StringPrintf("eps=%.0e", epsilon),
                  StringPrintf("%.3f", watch.ElapsedMillis() /
                                           static_cast<double>(
                                               sources.size())),
                  StringPrintf("%.3f", precision /
                                           static_cast<double>(
                                               sources.size()))});
  }

  for (const uint32_t walks : {128u, 512u, 2048u, 8192u, 32768u}) {
    const PprMonteCarlo mc(0.15, walks, 11);
    Stopwatch watch;
    double precision = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      const auto approx = TopUsers(mc.Compute(graph, sources[s]), 10);
      precision += PrecisionAtK(truth[s], approx, 10);
    }
    table.AddRow({"monte-carlo", StringPrintf("walks=%u", walks),
                  StringPrintf("%.3f", watch.ElapsedMillis() /
                                           static_cast<double>(
                                               sources.size())),
                  StringPrintf("%.3f", precision /
                                           static_cast<double>(
                                               sources.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
