// Fig 12 — query QoS under saturation, through the SearchService edge:
//
//  (1) closed-loop capacity measurement: client threads issue
//      back-to-back queries until latency stops buying throughput —
//      that QPS is the service's capacity;
//  (2) open-loop arrival-rate sweep at {0.5, 1.0, 1.5, 2.0}x capacity
//      with SCHEDULED arrival timestamps (latency is measured from the
//      scheduled arrival, not the send, so queueing delay is charged to
//      the service — no coordinated omission), admission control ON:
//      p50/p99, timeout%, degraded%, shed% per rate.
//
// The claim under test: past capacity an admission-controlled service
// keeps p99 bounded by TRADING completeness for latency — every request
// is accounted for as served / degraded / shed / timed out, never
// silently dropped (the "accounted" column must always read yes).
//
//   ./build/bench/bench_fig12_saturation [--smoke] [--shards=N]
//
//   --smoke   small dataset / reduced volumes (CI smoke run)
//   --shards  backend partitions (default 4)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

namespace {

using Clock = std::chrono::steady_clock;

/// Closed loop: `threads` clients issue back-to-back queries; the
/// aggregate QPS approximates service capacity at full utilization.
double MeasureCapacityQps(SearchService* service,
                          const std::vector<SocialQuery>& queries,
                          int threads, int queries_per_thread) {
  std::atomic<int> errors{0};
  Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < queries_per_thread; ++i) {
        SearchRequest request;
        request.query = queries[(static_cast<size_t>(t) * 37 + i) %
                                queries.size()];
        if (!service->Search(request).ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed = watch.ElapsedSeconds();
  if (errors.load() != 0) {
    std::fprintf(stderr, "[bench] %d errors in capacity phase!\n",
                 errors.load());
    return 0.0;
  }
  return static_cast<double>(threads) * queries_per_thread / elapsed;
}

/// Everything one open-loop run observed. Every arrival lands in exactly
/// one of served/degraded/shed/failed; `timeouts` marks served or
/// degraded responses that overran their deadline (best-effort partials).
struct SweepOutcome {
  uint64_t issued = 0;
  uint64_t served = 0;    // admitted, ran as asked
  uint64_t degraded = 0;  // ran cheaper
  uint64_t shed = 0;      // refused honestly
  uint64_t failed = 0;    // hard errors (should be 0)
  uint64_t timeouts = 0;
  LatencySummary latency;  // over completed (non-shed) responses
  double achieved_qps = 0.0;
  bool accounted() const {
    return issued == served + degraded + shed + failed;
  }
};

/// Open loop: `total` arrivals at fixed `interval`, each with a scheduled
/// ABSOLUTE timestamp. A pool of workers (sized generously so the arrival
/// process never blocks on a busy client) picks the next arrival, sleeps
/// until its schedule, fires it, and charges the response with
/// (completion - scheduled arrival) — queueing delay included.
SweepOutcome RunOpenLoop(SearchService* service,
                         const std::vector<SocialQuery>& queries,
                         double arrival_qps, int total, double timeout_ms,
                         int workers) {
  SweepOutcome outcome;
  outcome.issued = static_cast<uint64_t>(total);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / arrival_qps));
  const Clock::time_point start = Clock::now();

  std::atomic<int> next{0};
  std::mutex merge_mutex;
  LatencyRecorder recorder;
  std::atomic<uint64_t> served{0}, degraded{0}, shed{0}, failed{0},
      timeouts{0};

  std::vector<std::thread> pool;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      std::vector<double> local_latencies;
      for (int i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
        const Clock::time_point scheduled = start + interval * i;
        std::this_thread::sleep_until(scheduled);
        SearchRequest request;
        request.query = queries[static_cast<size_t>(i) % queries.size()];
        request.timeout_ms = timeout_ms;
        const auto response = service->Search(request);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      scheduled)
                .count();
        if (!response.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (response.value().shed) {
          shed.fetch_add(1);
          continue;  // refused: no latency sample, but fully accounted
        }
        if (response.value().degraded) {
          degraded.fetch_add(1);
        } else {
          served.fetch_add(1);
        }
        if (response.value().deadline_exceeded) timeouts.fetch_add(1);
        local_latencies.push_back(latency_ms);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (const double l : local_latencies) recorder.Record(l);
    });
  }
  for (auto& worker : pool) worker.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start)
                             .count();

  outcome.served = served.load();
  outcome.degraded = degraded.load();
  outcome.shed = shed.load();
  outcome.failed = failed.load();
  outcome.timeouts = timeouts.load();
  outcome.latency = recorder.Summarize();
  outcome.achieved_qps = total / elapsed;
  return outcome;
}

double Pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t shards = bench::ParseShardsFlag(argc, argv, 4);

  bench::PrintBanner(
      "Fig 12: open-loop saturation sweep with admission control "
      "[arrival rate vs p50/p99/timeout/shed]",
      "past capacity, honest shedding + degradation keep p99 bounded; "
      "every arrival is accounted for, zero silent drops");

  bench::ServiceBundle bundle =
      bench::BuildService(smoke ? SmallDataset() : MediumDataset(), shards);
  SearchService* service = bundle.service.get();

  QueryWorkloadConfig workload;
  workload.num_queries = smoke ? 64 : 256;
  workload.k = 10;
  workload.alpha = 0.5;
  workload.seed = 1212;
  const auto queries = GenerateQueries(bundle.workload_view, workload);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }
  bench::WarmService(service, queries.value());

  // --- (1) closed-loop capacity. ---------------------------------------
  const int kCapacityThreads = 4;
  const int kCapacityQueries = smoke ? 250 : 2000;
  const double capacity_qps = MeasureCapacityQps(
      service, queries.value(), kCapacityThreads, kCapacityQueries);
  if (capacity_qps <= 0.0) return 1;
  std::fprintf(stderr, "[bench] capacity ~%.0f qps (closed loop, %d threads)\n",
               capacity_qps, kCapacityThreads);
  std::printf("capacity (closed loop, %d threads): %.0f qps\n\n",
              kCapacityThreads, capacity_qps);

  // --- (2) open-loop sweep with admission control ON. ------------------
  // Pressure-based policy: past ~2x the closed-loop client count the
  // service degrades to the cheaper scan; past 4x it sheds. The deadline
  // gives stragglers a hard latency ceiling inside the shards.
  const double timeout_ms = smoke ? 250.0 : 100.0;
  AdmissionController::Options policy;
  policy.max_inflight = 32;
  policy.degrade_inflight = 8;
  policy.degrade_algorithm = AlgorithmId::kMergeScan;
  policy.degrade_timeout_ms = timeout_ms / 2.0;
  service->EnableAdmissionControl(policy);

  // Workers sized so the arrival process outpaces a saturated service:
  // arrivals must never queue on a busy client thread (open loop).
  const int kWorkers = 64;
  TablePrinter table({"rate", "target qps", "achieved", "p50 ms", "p99 ms",
                      "timeout %", "degraded %", "shed %", "accounted"});
  bool all_accounted = true;
  for (const double multiplier : {0.5, 1.0, 1.5, 2.0}) {
    const double rate = std::max(1.0, capacity_qps * multiplier);
    const int total = smoke
                          ? std::min(400, static_cast<int>(rate * 2.0))
                          : static_cast<int>(rate * 5.0);
    const SweepOutcome outcome = RunOpenLoop(
        service, queries.value(), rate, std::max(total, 50), timeout_ms,
        kWorkers);
    all_accounted = all_accounted && outcome.accounted() &&
                    outcome.failed == 0;
    table.AddRow({StringPrintf("%.1fx", multiplier),
                  StringPrintf("%.0f", rate),
                  StringPrintf("%.0f", outcome.achieved_qps),
                  bench::Ms(outcome.latency.p50),
                  bench::Ms(outcome.latency.p99),
                  StringPrintf("%.1f", Pct(outcome.timeouts,
                                           outcome.issued - outcome.shed)),
                  StringPrintf("%.1f", Pct(outcome.degraded, outcome.issued)),
                  StringPrintf("%.1f", Pct(outcome.shed, outcome.issued)),
                  outcome.accounted() && outcome.failed == 0 ? "yes" : "NO"});
    std::fprintf(stderr, "[bench] %.1fx capacity done (%llu shed, %llu "
                 "degraded)\n", multiplier,
                 static_cast<unsigned long long>(outcome.shed),
                 static_cast<unsigned long long>(outcome.degraded));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n%s", service->StatsSummary().c_str());

  if (!all_accounted) {
    std::fprintf(stderr, "[bench] ACCOUNTING VIOLATION: some arrivals were "
                 "silently dropped\n");
    return 1;
  }
  return 0;
}
