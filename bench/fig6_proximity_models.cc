// Fig 6 — the proximity-model trade-off: each model's per-user
// computation latency, the resulting end-to-end hybrid query latency, and
// the ranking quality (precision@10 against the engine running exact
// PPR).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "proximity/common_neighbors.h"
#include "proximity/hop_decay.h"
#include "proximity/katz.h"
#include "proximity/ppr_forward_push.h"
#include "proximity/ppr_monte_carlo.h"
#include "proximity/ppr_power_iteration.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/metrics.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 6: proximity models — cost vs ranking quality "
      "[medium dataset, alpha=0.7, k=10]",
      "cheap structural models trade precision for latency; forward-push "
      "PPR is near-exact at a fraction of power iteration's cost");

  const DatasetConfig config = MediumDataset();

  // Ground truth engine: exact PPR (slow, used only as the reference).
  SocialSearchEngine::Options exact_options;
  exact_options.proximity_model =
      std::make_shared<PprPowerIteration>(0.15, 60, 1e-8, 1e-7);
  bench::EngineBundle truth = bench::BuildEngine(config, exact_options);

  QueryWorkloadConfig workload;
  workload.num_queries = 25;  // exact PPR is O(V+E) per distinct user
  workload.k = 10;
  workload.alpha = 0.7;
  workload.seed = 66;
  const auto queries = GenerateQueries(truth.workload_view, workload);
  if (!queries.ok()) return 1;

  std::fprintf(stderr, "[bench] computing exact-PPR ground truth...\n");
  std::vector<std::vector<ScoredItem>> truth_results;
  for (const SocialQuery& query : queries.value()) {
    const auto result = truth.engine->Query(query, AlgorithmId::kHybrid);
    if (!result.ok()) return 1;
    truth_results.push_back(result.value().items);
  }

  struct Candidate {
    const char* label;
    std::shared_ptr<const ProximityModel> model;
  };
  const std::vector<Candidate> candidates = {
      {"hop-decay", std::make_shared<HopDecayProximity>(0.5, 2)},
      {"common-neighbors", std::make_shared<CommonNeighborsProximity>()},
      {"adamic-adar",
       std::make_shared<CommonNeighborsProximity>(
           CommonNeighborsProximity::Weighting::kAdamicAdar)},
      {"katz(l=3)", std::make_shared<KatzProximity>(0.05, 3)},
      {"ppr-push(1e-4)", std::make_shared<PprForwardPush>(0.15, 1e-4)},
      {"ppr-mc(2048)", std::make_shared<PprMonteCarlo>(0.15, 2048, 9)},
      {"ppr-exact",
       std::make_shared<PprPowerIteration>(0.15, 60, 1e-8, 1e-7)},
  };

  TablePrinter table({"model", "proximity ms/user", "query ms (hybrid)",
                      "precision@10 vs exact"});
  for (const Candidate& candidate : candidates) {
    // Raw proximity cost over the distinct query users.
    Stopwatch watch;
    size_t computed = 0;
    for (const SocialQuery& query : queries.value()) {
      (void)candidate.model->Compute(truth.workload_view.graph, query.user);
      ++computed;
    }
    const double proximity_ms = watch.ElapsedMillis() /
                                static_cast<double>(computed);

    SocialSearchEngine::Options options;
    options.proximity_model = candidate.model;
    options.proximity_cache_capacity = 1;  // force recomputation per user
    bench::EngineBundle bundle = bench::BuildEngine(config, options);

    double total_precision = 0.0;
    LatencyRecorder latency;
    for (size_t q = 0; q < queries.value().size(); ++q) {
      Stopwatch query_watch;
      const auto result =
          bundle.engine->Query(queries.value()[q], AlgorithmId::kHybrid);
      latency.Record(query_watch.ElapsedMillis());
      if (!result.ok()) return 1;
      total_precision +=
          PrecisionAtK(truth_results[q], result.value().items, 10);
    }
    table.AddRow({candidate.label, StringPrintf("%.3f", proximity_ms),
                  bench::Ms(latency.Summarize().mean),
                  StringPrintf("%.3f", total_precision /
                                           static_cast<double>(
                                               queries.value().size()))});
    std::fprintf(stderr, "[bench] %s done\n", candidate.label);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
