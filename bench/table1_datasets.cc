// Table 1 — dataset statistics. The synthetic stand-ins for the crawled
// social datasets of the paper class: users, friendships, degree shape,
// clustering, catalogue size (see DESIGN.md §5 for the substitution
// rationale).

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "graph/graph_algorithms.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/dataset_generator.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Table 1: dataset statistics (small / medium / large)",
      "synthetic graphs exhibit heavy-tailed degrees and non-trivial "
      "clustering, matching crawled social networks");

  TablePrinter table({"dataset", "users", "edges", "avg deg", "max deg",
                      "clustering", "items", "distinct tags", "geo items"});
  for (const DatasetConfig& config :
       {SmallDataset(), MediumDataset(), LargeDataset()}) {
    auto dataset = GenerateDataset(config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    const Dataset& d = dataset.value();

    std::set<TagId> distinct_tags;
    size_t geo_items = 0;
    for (ItemId i = 0; i < d.store.num_items(); ++i) {
      for (const TagId t : d.store.tags(i)) distinct_tags.insert(t);
      if (d.store.has_geo(i)) ++geo_items;
    }
    table.AddRow({config.name,
                  WithThousandsSeparators(d.graph.num_users()),
                  WithThousandsSeparators(d.graph.num_edges()),
                  StringPrintf("%.1f", d.graph.AverageDegree()),
                  WithThousandsSeparators(d.graph.MaxDegree()),
                  StringPrintf("%.4f", GlobalClusteringCoefficient(d.graph)),
                  WithThousandsSeparators(d.store.num_items()),
                  WithThousandsSeparators(distinct_tags.size()),
                  WithThousandsSeparators(geo_items)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
