// Fig 5 — scalability: latency vs graph size, through the SearchService
// surface. The exhaustive baseline grows linearly with the catalogue; the
// index-driven strategies grow sublinearly (bounded by the query's
// neighbourhood and posting-list prefixes, not the corpus). With
// --shards=N the same workload runs against a ShardedSearchService: each
// shard scans/aggregates over ~1/N of the items and the fan-out/merge
// happens on a thread pool, so the exhaustive row in particular drops
// toward 1/N.
//
//   ./build/bench/bench_fig5_scalability [--shards=N]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main(int argc, char** argv) {
  const size_t shards = bench::ParseShardsFlag(argc, argv, 1);
  bench::PrintBanner(
      StringPrintf("Fig 5: mean query latency (ms) vs users  "
                   "[alpha=0.5, k=10, shards=%zu]",
                   shards),
      "exhaustive grows linearly with corpus size; hybrid grows "
      "sublinearly; sharding divides the per-request scan work");

  TablePrinter table({"users", "items", "exhaustive", "merge-scan",
                      "hybrid"});
  for (const size_t users : {10000, 20000, 40000, 80000, 160000, 320000}) {
    bench::ServiceBundle bundle =
        bench::BuildService(ScaledDataset(users), shards);
    QueryWorkloadConfig workload;
    workload.num_queries = users >= 160000 ? 25 : 50;
    workload.k = 10;
    workload.alpha = 0.5;
    workload.seed = 55;
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmService(bundle.service.get(), queries.value());

    std::vector<std::string> row{
        WithThousandsSeparators(users),
        WithThousandsSeparators(bundle.service->num_items())};
    for (const AlgorithmId id :
         {AlgorithmId::kExhaustive, AlgorithmId::kMergeScan,
          AlgorithmId::kHybrid}) {
      row.push_back(bench::Ms(
          bench::RunServiceQueries(bundle.service.get(), queries.value(), id)
              .mean));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[bench] %zu users done\n", users);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
