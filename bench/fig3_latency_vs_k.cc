// Fig 3 — query latency vs result size k for all five execution
// strategies at a balanced blend (alpha = 0.5), plus the block-max axis:
// merge-scan against a twin engine with block-max pruning disabled, and
// the blocks decoded/skipped counters the pruned run reported through
// QueryResult::stats (the same counters SearchResponse carries
// service-side).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 3: mean query latency (ms) vs k  [medium dataset, alpha=0.5]",
      "early-terminating strategies beat the scans by orders of magnitude; "
      "latency grows mildly with k; hybrid <= min(content-first, "
      "social-first); block-max pruning trims merge-scan block decodes "
      "without changing results");

  bench::EngineBundle bundle = bench::BuildEngine(MediumDataset());
  SocialSearchEngine::Options no_bmax_options;
  no_bmax_options.index_options.posting_options.enable_block_max = false;
  bench::EngineBundle no_bmax =
      bench::BuildEngine(MediumDataset(), no_bmax_options);

  TablePrinter table({"k", "exhaustive", "merge-scan", "merge (no bmax)",
                      "content-first", "social-first", "hybrid", "blk dec",
                      "blk skip"});
  for (const size_t k : {1, 5, 10, 20, 50, 100}) {
    QueryWorkloadConfig workload;
    workload.num_queries = 60;
    workload.k = k;
    workload.alpha = 0.5;
    workload.seed = 33;
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmProximityCache(bundle.engine.get(), queries.value());
    bench::WarmProximityCache(no_bmax.engine.get(), queries.value());

    std::vector<std::string> row{std::to_string(k)};
    row.push_back(bench::Ms(bench::RunQueries(bundle.engine.get(),
                                              queries.value(),
                                              AlgorithmId::kExhaustive)
                                .mean));
    SearchStats merge_stats;
    row.push_back(bench::Ms(
        bench::RunQueries(bundle.engine.get(), queries.value(),
                          AlgorithmId::kMergeScan, 1, &merge_stats)
            .mean));
    row.push_back(bench::Ms(bench::RunQueries(no_bmax.engine.get(),
                                              queries.value(),
                                              AlgorithmId::kMergeScan)
                                .mean));
    for (const AlgorithmId id :
         {AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
          AlgorithmId::kHybrid}) {
      row.push_back(bench::Ms(
          bench::RunQueries(bundle.engine.get(), queries.value(), id).mean));
    }
    row.push_back(std::to_string(merge_stats.aggregation.blocks_decoded));
    row.push_back(std::to_string(merge_stats.aggregation.blocks_skipped));
    table.AddRow(row);
    std::fprintf(stderr, "[bench] k=%zu done\n", k);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
