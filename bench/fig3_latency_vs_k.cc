// Fig 3 — query latency vs result size k for all five execution
// strategies at a balanced blend (alpha = 0.5).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 3: mean query latency (ms) vs k  [medium dataset, alpha=0.5]",
      "early-terminating strategies beat the scans by orders of magnitude; "
      "latency grows mildly with k; hybrid <= min(content-first, "
      "social-first)");

  bench::EngineBundle bundle = bench::BuildEngine(MediumDataset());

  TablePrinter table({"k", "exhaustive", "merge-scan", "content-first",
                      "social-first", "hybrid"});
  for (const size_t k : {1, 5, 10, 20, 50, 100}) {
    QueryWorkloadConfig workload;
    workload.num_queries = 60;
    workload.k = k;
    workload.alpha = 0.5;
    workload.seed = 33;
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmProximityCache(bundle.engine.get(), queries.value());

    std::vector<std::string> row{std::to_string(k)};
    for (const AlgorithmId id :
         {AlgorithmId::kExhaustive, AlgorithmId::kMergeScan,
          AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
          AlgorithmId::kHybrid}) {
      row.push_back(bench::Ms(
          bench::RunQueries(bundle.engine.get(), queries.value(), id).mean));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[bench] k=%zu done\n", k);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
