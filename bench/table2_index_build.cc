// Table 2 — index construction cost: build time and memory footprint of
// the inverted index (both representations), the social index, and the
// geo grid, per dataset scale — plus the incremental-compaction axis:
// what folding a small tail costs through the merge path (only
// tail-touched lists rebuilt) versus a full rebuild.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Table 2: index construction (time and memory)",
      "index build scales near-linearly with the catalogue; memory stays "
      "a small multiple of the raw data");

  TablePrinter table({"dataset", "items", "inverted ms", "inverted mem",
                      "social ms", "social mem", "grid mem", "store mem"});
  TablePrinter incremental({"dataset", "tail items", "merge ms",
                            "lists touched", "rebuild ms", "lists rebuilt"});
  for (const DatasetConfig& config :
       {SmallDataset(), MediumDataset(), LargeDataset()}) {
    bench::EngineBundle bundle = bench::BuildEngine(config);
    const IndexBuildStats& stats = bundle.engine->last_build_stats();
    table.AddRow(
        {config.name,
         WithThousandsSeparators(bundle.engine->store().num_items()),
         bench::Ms(stats.inverted_build_ms), HumanBytes(stats.inverted_bytes),
         bench::Ms(stats.social_build_ms), HumanBytes(stats.social_bytes),
         HumanBytes(bundle.engine->grid_index().MemoryBytes()),
         HumanBytes(bundle.engine->store().MemoryBytes())});

    // Incremental axis: a 2% tail folded by merge, then an identical
    // tail folded by full rebuild, on the same engine.
    const size_t num_users = bundle.engine->graph().num_users();
    const size_t tail = std::max<size_t>(
        64, bundle.engine->store().num_items() / 50);
    Rng rng(config.seed + 7);
    auto add_tail = [&] {
      for (size_t i = 0; i < tail; ++i) {
        Item item;
        item.owner = static_cast<UserId>(rng.UniformIndex(num_users));
        item.tags = {static_cast<TagId>(rng.UniformIndex(1000))};
        item.quality = static_cast<float>(rng.UniformDouble());
        AMICI_CHECK_OK(bundle.engine->AddItem(item).status());
      }
    };
    add_tail();
    CompactionOutcome merge_outcome;
    AMICI_CHECK_OK(bundle.engine->Compact(CompactionMode::kAlwaysMerge,
                                          &merge_outcome));
    add_tail();
    CompactionOutcome rebuild_outcome;
    AMICI_CHECK_OK(bundle.engine->Compact(CompactionMode::kAlwaysRebuild,
                                          &rebuild_outcome));
    incremental.AddRow(
        {config.name, WithThousandsSeparators(tail),
         bench::Ms(merge_outcome.elapsed_ms),
         WithThousandsSeparators(merge_outcome.lists_touched),
         bench::Ms(rebuild_outcome.elapsed_ms),
         WithThousandsSeparators(rebuild_outcome.lists_touched)});
  }
  std::printf("%s", table.ToString().c_str());

  bench::PrintBanner(
      "Table 2b: incremental compaction (merge) vs full rebuild, 2% tail",
      "the merge path's cost tracks the tail's touched lists, not the "
      "catalogue");
  std::printf("%s", incremental.ToString().c_str());
  return 0;
}
