// Table 2 — index construction cost: build time and memory footprint of
// the inverted index (both representations), the social index, and the
// geo grid, per dataset scale.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Table 2: index construction (time and memory)",
      "index build scales near-linearly with the catalogue; memory stays "
      "a small multiple of the raw data");

  TablePrinter table({"dataset", "items", "inverted ms", "inverted mem",
                      "social ms", "social mem", "grid mem", "store mem"});
  for (const DatasetConfig& config :
       {SmallDataset(), MediumDataset(), LargeDataset()}) {
    bench::EngineBundle bundle = bench::BuildEngine(config);
    const IndexBuildStats& stats = bundle.engine->last_build_stats();
    table.AddRow(
        {config.name,
         WithThousandsSeparators(bundle.engine->store().num_items()),
         bench::Ms(stats.inverted_build_ms), HumanBytes(stats.inverted_bytes),
         bench::Ms(stats.social_build_ms), HumanBytes(stats.social_bytes),
         HumanBytes(bundle.engine->grid_index().MemoryBytes()),
         HumanBytes(bundle.engine->store().MemoryBytes())});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
