// Fig 4 — the headline crossover: latency vs the social/content blend
// alpha. ContentFirst degrades as alpha rises, SocialFirst mirrors it,
// and the adaptive hybrid tracks the lower envelope without tuning.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 4: mean query latency (ms) vs alpha  [medium dataset, k=10]",
      "content-first cheap at alpha~0 and degrades towards 1; social-first "
      "mirror-image; a crossover exists inside (0,1); hybrid tracks the "
      "lower envelope");

  bench::EngineBundle bundle = bench::BuildEngine(MediumDataset());

  TablePrinter table({"alpha", "content-first", "social-first", "hybrid",
                      "merge-scan"});
  for (int step = 0; step <= 10; ++step) {
    const double alpha = static_cast<double>(step) / 10.0;
    QueryWorkloadConfig workload;
    workload.num_queries = 60;
    workload.k = 10;
    workload.alpha = alpha;
    workload.seed = 44;
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmProximityCache(bundle.engine.get(), queries.value());

    std::vector<std::string> row{bench::Ms(alpha)};
    for (const AlgorithmId id :
         {AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
          AlgorithmId::kHybrid, AlgorithmId::kMergeScan}) {
      row.push_back(bench::Ms(
          bench::RunQueries(bundle.engine.get(), queries.value(), id).mean));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[bench] alpha=%.1f done\n", alpha);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
