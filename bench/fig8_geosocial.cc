// Fig 8 — geo-social queries: latency vs radius for the geo-driven plan
// (grid enumeration) against the filtered social/content plans. The
// crossover: tight radii favour geo-first, wide radii favour the indexes.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 8: geo-social latency (ms) vs radius  [k=10, alpha=0.5]",
      "geo-grid wins at small radii (few candidates in range); the "
      "filtered index strategies win as the radius grows");

  DatasetConfig config = MediumDataset();
  config.name = "medium-geo";
  config.geo_fraction = 1.0;
  config.num_cities = 6;
  bench::EngineBundle bundle = bench::BuildEngine(config);

  TablePrinter table({"radius km", "avg in-range", "geo-grid", "hybrid",
                      "exhaustive"});
  for (const double radius : {1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    QueryWorkloadConfig workload;
    workload.num_queries = 40;
    workload.k = 10;
    workload.alpha = 0.5;
    workload.with_geo_filter = true;
    workload.radius_km = radius;
    workload.seed = 77;
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmProximityCache(bundle.engine.get(), queries.value());

    // Average eligible candidates, for context.
    double in_range = 0.0;
    for (const SocialQuery& query : queries.value()) {
      in_range += static_cast<double>(
          bundle.engine->grid_index()
              .ItemsInRadius({query.latitude, query.longitude},
                             query.radius_km)
              .size());
    }
    in_range /= static_cast<double>(queries.value().size());

    std::vector<std::string> row{StringPrintf("%.0f", radius),
                                 StringPrintf("%.0f", in_range)};
    for (const AlgorithmId id :
         {AlgorithmId::kGeoGrid, AlgorithmId::kHybrid,
          AlgorithmId::kExhaustive}) {
      row.push_back(bench::Ms(
          bench::RunQueries(bundle.engine.get(), queries.value(), id).mean));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[bench] radius=%.0f done\n", radius);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
