// Micro benchmarks (google-benchmark) for the performance-critical
// primitives underneath the query algorithms: varint codecs, posting-list
// traversal, top-k heap maintenance, Zipf sampling, proximity kernels,
// and the rank-aggregation engine itself.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_generators.h"
#include "persist/segment.h"
#include "proximity/ppr_forward_push.h"
#include "storage/posting_list.h"
#include "topk/threshold_algorithm.h"
#include "topk/topk_heap.h"
#include "util/rng.h"
#include "util/varint.h"
#include "util/zipf.h"

namespace amici {
namespace {

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.NextUint64() >> rng.UniformIndex(64);
  for (auto _ : state) {
    std::string buffer;
    buffer.reserve(values.size() * 10);
    for (const uint64_t v : values) PutVarint64(v, &buffer);
    benchmark::DoNotOptimize(buffer);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  Rng rng(2);
  std::string buffer;
  const size_t count = 1024;
  for (size_t i = 0; i < count; ++i) {
    PutVarint64(rng.NextUint64() >> rng.UniformIndex(64), &buffer);
  }
  for (auto _ : state) {
    size_t offset = 0;
    uint64_t value = 0;
    for (size_t i = 0; i < count; ++i) {
      benchmark::DoNotOptimize(GetVarint64(buffer, &offset, &value));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
}
BENCHMARK(BM_VarintDecode);

PostingList MakeList(size_t count, bool skips) {
  Rng rng(3);
  std::vector<ScoredItem> postings;
  uint32_t doc = 0;
  for (size_t i = 0; i < count; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.UniformIndex(8));
    postings.push_back({doc, static_cast<float>(rng.UniformDouble())});
  }
  PostingList::Options options;
  options.enable_skips = skips;
  return PostingList::Build(postings, options).value();
}

void BM_PostingListIterate(benchmark::State& state) {
  const PostingList list = MakeList(100000, true);
  for (auto _ : state) {
    uint64_t checksum = 0;
    for (auto it = list.NewIterator(); it.Valid(); it.Next()) {
      checksum += it.Doc();
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PostingListIterate);

void BM_PostingListSeek(benchmark::State& state) {
  const bool skips = state.range(0) != 0;
  const PostingList list = MakeList(100000, skips);
  Rng rng(4);
  for (auto _ : state) {
    auto it = list.NewIterator();
    // Strided forward seeks across the whole list.
    for (ItemId target = 1000; it.Valid() && target < 450000;
         target += 9000) {
      it.SeekGeq(target);
    }
    benchmark::DoNotOptimize(it.Valid());
  }
}
BENCHMARK(BM_PostingListSeek)->Arg(1)->Arg(0);

// --- Block decode kernels ------------------------------------------------
// Three rungs of the same job — turn one block-sized delta-varint stream
// into absolute doc ids — so the ladder isolates each win:
//   SeedScalar:  the pre-block-decoder iterator loop (interleaved
//                impact bytes, one GetVarint32 per posting, push_back
//                into freshly cleared vectors);
//   Scalar:      DecodeDeltaBlockScalar into a reused fixed buffer
//                (buffer reuse + split layout, no SIMD);
//   Simd:        DecodeDeltaBlock, whatever kernel this CPU dispatches
//                to (label says which).

constexpr size_t kDecodeCount = 1024;

std::string MakeGapStream(bool interleave_impacts) {
  Rng rng(10);
  std::string stream;
  for (size_t i = 0; i < kDecodeCount; ++i) {
    // Dense-posting gap profile: single-byte varints, like MakeList's.
    PutVarint32(1 + static_cast<uint32_t>(rng.UniformIndex(8)), &stream);
    if (interleave_impacts) {
      stream.push_back(static_cast<char>(rng.UniformIndex(256)));
    }
  }
  return stream;
}

void BM_BlockDecodeSeedScalar(benchmark::State& state) {
  const std::string stream = MakeGapStream(true);
  std::vector<ItemId> docs;
  std::vector<uint8_t> impacts;
  for (auto _ : state) {
    docs.clear();
    impacts.clear();
    size_t offset = 0;
    uint32_t doc = 0;
    for (size_t i = 0; i < kDecodeCount; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(stream, &offset, &delta)) {
        state.SkipWithError("corrupt stream");
        return;
      }
      doc = i == 0 ? delta : doc + delta;
      docs.push_back(doc);
      impacts.push_back(static_cast<uint8_t>(stream[offset]));
      ++offset;
    }
    benchmark::DoNotOptimize(docs.data());
    benchmark::DoNotOptimize(impacts.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDecodeCount));
}
BENCHMARK(BM_BlockDecodeSeedScalar);

void BM_BlockDeltaDecodeScalar(benchmark::State& state) {
  const std::string stream = MakeGapStream(false);
  std::vector<uint32_t> out(kDecodeCount);
  for (auto _ : state) {
    size_t offset = 0;
    if (!DecodeDeltaBlockScalar(stream.data(), stream.size(), &offset,
                                kDecodeCount, out.data())) {
      state.SkipWithError("corrupt stream");
      return;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDecodeCount));
}
BENCHMARK(BM_BlockDeltaDecodeScalar);

void BM_BlockDeltaDecodeSimd(benchmark::State& state) {
  const std::string stream = MakeGapStream(false);
  std::vector<uint32_t> out(kDecodeCount);
  for (auto _ : state) {
    size_t offset = 0;
    if (!DecodeDeltaBlock(stream.data(), stream.size(), &offset,
                          kDecodeCount, out.data())) {
      state.SkipWithError("corrupt stream");
      return;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDecodeCount));
  state.SetLabel(DeltaBlockKernelName());
}
BENCHMARK(BM_BlockDeltaDecodeSimd);

// Full-list traversal with the block-max skip table: Arg(1) prunes
// against a floor only the highest-impact blocks clear; Arg(0) decodes
// everything (threshold below every bound). The counters report how much
// of the list the pruned run never touched.
void BM_BlockMaxTraversal(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const PostingList list = MakeList(100000, true);
  const double threshold =
      prune ? 0.999 * static_cast<double>(list.max_score()) : -1.0;
  uint64_t decoded = 0;
  uint64_t skipped = 0;
  for (auto _ : state) {
    auto it = list.NewIterator();
    uint64_t checksum = 0;
    while (it.Valid()) {
      if (!it.SkipToBlockWithBoundAbove(threshold)) break;
      checksum += it.Doc();
      it.Next();
    }
    benchmark::DoNotOptimize(checksum);
    decoded = it.blocks_decoded();
    skipped = it.blocks_skipped();
  }
  state.counters["blocks_decoded"] = static_cast<double>(decoded);
  state.counters["blocks_skipped"] = static_cast<double>(skipped);
}
BENCHMARK(BM_BlockMaxTraversal)->Arg(1)->Arg(0);

void BM_TopKHeapPush(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> scores(100000);
  for (auto& s : scores) s = rng.UniformDouble();
  for (auto _ : state) {
    TopKHeap heap(10);
    for (size_t i = 0; i < scores.size(); ++i) {
      heap.Push(static_cast<ItemId>(i), scores[i]);
    }
    benchmark::DoNotOptimize(heap.KthScore());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scores.size()));
}
BENCHMARK(BM_TopKHeapPush);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(6);
  const ZipfSampler zipf(1000000, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_PprForwardPush(benchmark::State& state) {
  Rng rng(7);
  const SocialGraph graph = GenerateBarabasiAlbert(20000, 6, &rng);
  const PprForwardPush push(0.15, 1e-4);
  UserId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(push.Compute(graph, source));
    source = (source + 97) % static_cast<UserId>(graph.num_users());
  }
}
BENCHMARK(BM_PprForwardPush);

class VectorSource final : public SortedSource {
 public:
  explicit VectorSource(std::vector<ScoredItem> entries)
      : entries_(std::move(entries)) {}
  bool Valid() const override { return pos_ < entries_.size(); }
  ScoredItem Current() const override { return entries_[pos_]; }
  void Next() override { ++pos_; }
  void Reset() { pos_ = 0; }

 private:
  std::vector<ScoredItem> entries_;
  size_t pos_ = 0;
};

void BM_MappedPostingRead(benchmark::State& state) {
  // Serialize a batch of lists into one postings segment once; measure a
  // zero-copy DeserializeView straight off the mapping (hot page cache) —
  // the snapshot restart path's per-list cost.
  const std::string path = "/tmp/amici_micro_postings.seg";
  constexpr size_t kLists = 50;
  std::vector<size_t> offsets;
  {
    std::string payload;
    for (size_t i = 0; i < kLists; ++i) {
      offsets.push_back(payload.size());
      MakeList(2000, true).SerializeTo(&payload);
    }
    if (!persist::WriteSegmentFile(path, persist::SegmentKind::kPostings,
                                   payload)
             .ok()) {
      state.SkipWithError("segment write failed");
      return;
    }
  }
  auto segment =
      persist::MappedSegment::Open(path, persist::SegmentKind::kPostings);
  if (!segment.ok()) {
    state.SkipWithError("segment open failed");
    return;
  }
  const std::string_view payload = segment.value()->payload();
  size_t index = 0;
  for (auto _ : state) {
    size_t offset = offsets[index];
    auto list = PostingList::DeserializeView(payload, &offset,
                                             segment.value()->file());
    if (!list.ok()) {
      state.SkipWithError("mapped list parse failed");
      return;
    }
    benchmark::DoNotOptimize(list.value().size());
    index = (index + 7) % kLists;
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_MappedPostingRead);

void BM_ThresholdAlgorithm(benchmark::State& state) {
  Rng rng(8);
  const size_t num_lists = 3;
  std::vector<std::vector<ScoredItem>> lists(num_lists);
  std::vector<double> totals(50000, 0.0);
  for (auto& list : lists) {
    for (ItemId item = 0; item < 50000; ++item) {
      if (!rng.Bernoulli(0.3)) continue;
      const float partial = static_cast<float>(rng.UniformDouble());
      list.push_back({item, partial});
      totals[item] += partial;
    }
    std::sort(list.begin(), list.end(),
              [](const ScoredItem& a, const ScoredItem& b) {
                return a.score > b.score;
              });
  }
  auto score_of = [&totals](ItemId item) { return totals[item]; };
  for (auto _ : state) {
    std::vector<std::unique_ptr<VectorSource>> owned;
    std::vector<SortedSource*> sources;
    for (const auto& list : lists) {
      owned.push_back(std::make_unique<VectorSource>(list));
      sources.push_back(owned.back().get());
    }
    auto result = RunThresholdAlgorithm(
        std::span<SortedSource* const>(sources.data(), sources.size()),
        score_of, 10, MaxBoundPull, nullptr, nullptr);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ThresholdAlgorithm);

}  // namespace
}  // namespace amici

BENCHMARK_MAIN();
