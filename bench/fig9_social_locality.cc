// Fig 9 — social locality of the *workload*: the probability that a user
// queries tags their own circle posts (vs globally popular tags). When
// queries are socially local, the querying user's neighbourhood contains
// high-scoring answers, the k-th score rises quickly, and SocialFirst
// terminates sooner; globally-popular queries favour the content side.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace amici;

int main() {
  bench::PrintBanner(
      "Fig 9: effect of query social locality  [alpha=0.5, k=10]",
      "locality raises k-th scores and speeds up both early-terminating "
      "strategies; social-first keeps a multiple-factor lead across the "
      "entire sweep, including fully global queries");

  // Coherent neighbourhoods (dataset locality 0.7) make the workload knob
  // meaningful: friends actually share vocabulary.
  DatasetConfig config = MediumDataset();
  config.name = "medium-coherent";
  config.social_locality = 0.7;
  bench::EngineBundle bundle = bench::BuildEngine(config);

  TablePrinter table({"query locality", "content-first ms",
                      "social-first ms", "hybrid ms", "sf sorted acc",
                      "cf sorted acc"});
  for (const double locality : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    QueryWorkloadConfig workload;
    workload.num_queries = 80;
    workload.k = 10;
    workload.alpha = 0.5;
    workload.tag_locality = locality;
    workload.seed = 88;
    const auto queries = GenerateQueries(bundle.workload_view, workload);
    if (!queries.ok()) return 1;
    bench::WarmProximityCache(bundle.engine.get(), queries.value());

    auto mean_accesses = [&](AlgorithmId id) {
      uint64_t total = 0;
      for (const SocialQuery& q : queries.value()) {
        const auto r = bundle.engine->Query(q, id);
        if (r.ok()) total += r.value().stats.aggregation.sorted_accesses;
      }
      return total / queries.value().size();
    };

    const auto content = bench::RunQueries(
        bundle.engine.get(), queries.value(), AlgorithmId::kContentFirst);
    const auto social = bench::RunQueries(
        bundle.engine.get(), queries.value(), AlgorithmId::kSocialFirst);
    const auto hybrid = bench::RunQueries(bundle.engine.get(),
                                          queries.value(),
                                          AlgorithmId::kHybrid);
    table.AddRow({StringPrintf("%.2f", locality), bench::Ms(content.mean),
                  bench::Ms(social.mean), bench::Ms(hybrid.mean),
                  std::to_string(mean_accesses(AlgorithmId::kSocialFirst)),
                  std::to_string(
                      mean_accesses(AlgorithmId::kContentFirst))});
    std::fprintf(stderr, "[bench] locality=%.2f done\n", locality);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
