// amici_snapshot — offline inspector for snapshot directories written by
// SaveSnapshot (engine or service), in the spirit of RocksDB's
// sst_dump/ldb manifest tooling:
//
//   amici_snapshot info   DIR   dump the committed manifest: generation,
//                               covered state, per-segment table
//                               (kind, generation, bytes, checksum,
//                               entries) and the WAL's committed extent;
//                               service roots recurse into shard-<i>/.
//   amici_snapshot verify DIR   re-read every live file and fail loudly:
//                               manifest checksums, every segment's
//                               payload FNV-1a against both its header
//                               and the manifest, WAL frame checksums.
//
// Restart-equivalence smoke (CI runs the pair in SEPARATE processes and
// diffs their stdout, proving a cold restart reproduces the exact top-k):
//
//   amici_snapshot smoke-save  DIR   build a deterministic 2-shard
//                                    service, save a snapshot into DIR,
//                                    ingest a WAL-logged tail, then print
//                                    every query result (hexfloat scores).
//   amici_snapshot smoke-query DIR   reopen DIR (map segments + replay
//                                    the WAL tail) and print the same
//                                    deterministic query results.
//
// Exit code 0 = clean; 1 = any integrity failure (verify) or read error.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "persist/fs_util.h"
#include "persist/manifest.h"
#include "persist/segment.h"
#include "persist/wal.h"
#include "service/sharded_search_service.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/dataset_generator.h"
#include "workload/query_workload.h"

namespace amici {
namespace {

using persist::Manifest;
using persist::MappedSegment;
using persist::SegmentInfo;

/// Per-directory inspection/verification outcome, aggregated by main.
struct DirReport {
  uint64_t segments = 0;
  uint64_t bytes = 0;
  uint64_t failures = 0;
};

void PrintManifestHeader(const std::string& dir, const Manifest& m) {
  std::printf("%s\n", dir.c_str());
  std::printf("  manifest      %s (generation %" PRIu64 ")\n",
              persist::ManifestFileName(m.generation).c_str(), m.generation);
  if (m.num_shards > 0) {
    std::printf("  layout        service root, %u shard(s)\n", m.num_shards);
    std::printf("  users         %" PRIu64 "\n", m.num_users);
    std::printf("  items         %" PRIu64 "\n", m.num_items);
    std::printf("  wal           %s\n",
                m.wal_file.empty() ? "(none)" : m.wal_file.c_str());
  } else {
    std::printf("  layout        engine shard\n");
    std::printf("  users         %" PRIu64 "\n", m.num_users);
    std::printf("  items         %" PRIu64 " (indexed %" PRIu64
                ", tail %" PRIu64 ")\n",
                m.num_items, m.index_horizon, m.num_items - m.index_horizon);
    std::printf("  tags          %" PRIu64 "%s\n", m.num_tags,
                m.has_impact_ordered ? ", impact-ordered views" : "");
    if (m.has_grid) {
      std::printf("  grid          cell size %.4f deg\n",
                  m.grid_cell_size_deg);
    }
  }
}

/// Walks every live segment of `manifest`; in verify mode re-maps each one
/// with full checksum verification and cross-checks the manifest record.
DirReport InspectSegments(const std::string& dir, const Manifest& manifest,
                          bool verify) {
  DirReport report;
  if (!manifest.segments.empty()) {
    std::printf("  %-10s %-4s %-22s %12s %18s %10s\n", "kind", "gen", "file",
                "bytes", "checksum", "entries");
  }
  for (const SegmentInfo& info : manifest.segments) {
    report.segments++;
    report.bytes += info.payload_bytes;
    std::printf("  %-10s %-4" PRIu64 " %-22s %12" PRIu64 "   %016" PRIx64
                " %10" PRIu64 "\n",
                std::string(persist::SegmentKindName(info.kind)).c_str(),
                info.generation, info.file.c_str(), info.payload_bytes,
                info.checksum, info.entries);
    if (!verify) continue;
    auto segment = MappedSegment::Open(persist::JoinPath(dir, info.file),
                                       info.kind, /*verify_checksum=*/true);
    if (!segment.ok()) {
      std::fprintf(stderr, "  FAIL %s: %s\n", info.file.c_str(),
                   segment.status().ToString().c_str());
      report.failures++;
      continue;
    }
    if (segment.value()->payload_checksum() != info.checksum ||
        segment.value()->payload().size() != info.payload_bytes) {
      std::fprintf(stderr,
                   "  FAIL %s: segment does not match manifest record\n",
                   info.file.c_str());
      report.failures++;
    }
  }
  return report;
}

DirReport InspectWal(const std::string& dir, const Manifest& root) {
  DirReport report;
  if (root.wal_file.empty()) return report;
  auto stats =
      persist::ScanWal(persist::JoinPath(dir, root.wal_file), root.generation);
  if (!stats.ok()) {
    std::fprintf(stderr, "  FAIL %s: %s\n", root.wal_file.c_str(),
                 stats.status().ToString().c_str());
    report.failures++;
    return report;
  }
  std::printf("  wal extent    %" PRIu64 " committed record(s), %" PRIu64
              " byte(s)%s\n",
              stats.value().records_applied, stats.value().committed_bytes,
              stats.value().torn_tail ? ", TORN TAIL (will be truncated)"
                                      : "");
  return report;
}

Result<DirReport> InspectDir(const std::string& dir, bool verify) {
  AMICI_ASSIGN_OR_RETURN(const Manifest manifest,
                         persist::LoadCurrentManifest(dir));
  PrintManifestHeader(dir, manifest);
  DirReport report = InspectSegments(dir, manifest, verify);
  const DirReport wal = InspectWal(dir, manifest);
  report.failures += wal.failures;

  for (uint32_t shard = 0; shard < manifest.num_shards; ++shard) {
    const std::string shard_dir =
        persist::JoinPath(dir, "shard-" + std::to_string(shard));
    // Shard dirs have no CURRENT: the root pins their generation.
    auto shard_manifest = persist::ReadManifestFile(persist::JoinPath(
        shard_dir, persist::ManifestFileName(manifest.generation)));
    if (!shard_manifest.ok()) return shard_manifest.status();
    PrintManifestHeader(shard_dir, shard_manifest.value());
    const DirReport sub =
        InspectSegments(shard_dir, shard_manifest.value(), verify);
    report.segments += sub.segments;
    report.bytes += sub.bytes;
    report.failures += sub.failures;
  }
  return report;
}

// --- Restart-equivalence smoke -------------------------------------------
//
// Everything below is shared, seed-pinned state: smoke-save and
// smoke-query run in different processes, so any nondeterminism here
// (dataset, tail, queries) would show up as a false diff in CI.

DatasetConfig SmokeDatasetConfig() {
  DatasetConfig config = SmallDataset();
  config.num_users = 300;
  config.items_per_user = 4.0;
  config.num_tags = 200;
  config.geo_fraction = 0.4;
  config.seed = 20130408;
  return config;
}

/// The mutation tail acknowledged AFTER the save — it lives only in the
/// WAL, so smoke-query exercises real replay, not just segment mapping.
std::vector<Item> SmokeTailItems(const DatasetConfig& config) {
  Rng rng(config.seed * 7 + 3);
  std::vector<Item> tail(64);
  for (Item& item : tail) {
    item.owner = static_cast<UserId>(rng.UniformIndex(config.num_users));
    item.tags = {static_cast<TagId>(rng.UniformIndex(config.num_tags)),
                 static_cast<TagId>(rng.UniformIndex(config.num_tags))};
    item.quality = static_cast<float>(rng.UniformDouble());
  }
  return tail;
}

Result<std::vector<SocialQuery>> SmokeQueries(const DatasetConfig& config) {
  AMICI_ASSIGN_OR_RETURN(const Dataset view, GenerateDataset(config));
  QueryWorkloadConfig plain;
  plain.num_queries = 6;
  plain.seed = config.seed * 31 + 1;
  AMICI_ASSIGN_OR_RETURN(std::vector<SocialQuery> queries,
                         GenerateQueries(view, plain));
  QueryWorkloadConfig geo;
  geo.num_queries = 2;
  geo.with_geo_filter = true;
  geo.radius_km = 30.0;
  geo.seed = config.seed * 31 + 2;
  AMICI_ASSIGN_OR_RETURN(const std::vector<SocialQuery> geo_queries,
                         GenerateQueries(view, geo));
  queries.insert(queries.end(), geo_queries.begin(), geo_queries.end());
  SocialQuery feed;  // pure social feed: alpha 1 ignores content score
  feed.user = 7;
  feed.alpha = 1.0;
  feed.k = 8;
  queries.push_back(feed);
  return queries;
}

constexpr AlgorithmId kSmokeStrategies[] = {
    AlgorithmId::kExhaustive,   AlgorithmId::kMergeScan,
    AlgorithmId::kContentFirst, AlgorithmId::kSocialFirst,
    AlgorithmId::kHybrid,       AlgorithmId::kNra,
};

/// Prints every (query, strategy, mode) result with hexfloat scores —
/// byte-exact, so `diff` between the two processes is the equality test.
Status PrintSmokeResults(SearchService& service,
                         std::span<const SocialQuery> queries) {
  std::printf("catalogue %zu items, %zu users, %zu shard(s)\n",
              service.num_items(), service.num_users(), service.num_shards());
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const AlgorithmId algorithm : kSmokeStrategies) {
      for (const MatchMode mode : {MatchMode::kAny, MatchMode::kAll}) {
        SearchRequest request;
        request.query = queries[q];
        request.query.mode = mode;
        request.algorithm = algorithm;
        AMICI_ASSIGN_OR_RETURN(const SearchResponse response,
                               service.Search(request));
        std::printf("q%zu algo%d mode%d:", q, static_cast<int>(algorithm),
                    static_cast<int>(mode));
        for (const ScoredItem& hit : response.items) {
          std::printf(" %u=%a", hit.item, hit.score);
        }
        std::printf("\n");
      }
    }
  }
  return Status::Ok();
}

Status RunSmokeSave(const std::string& dir) {
  const DatasetConfig config = SmokeDatasetConfig();
  AMICI_ASSIGN_OR_RETURN(Dataset dataset, GenerateDataset(config));
  ShardedSearchService::Options options;
  options.num_shards = 2;
  AMICI_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedSearchService> service,
      ShardedSearchService::Build(std::move(dataset.graph),
                                  std::move(dataset.store), options));
  AMICI_RETURN_IF_ERROR(service->SaveSnapshot(dir).status());
  // Acknowledged tail: WAL-only until the next save. Includes a graph
  // edit so replay covers both record kinds.
  const std::vector<Item> tail = SmokeTailItems(config);
  AMICI_RETURN_IF_ERROR(service->AddItems(tail).status());
  AMICI_RETURN_IF_ERROR(service->AddFriendship(
      7, static_cast<UserId>(config.num_users - 1)));
  AMICI_ASSIGN_OR_RETURN(const std::vector<SocialQuery> queries,
                         SmokeQueries(config));
  return PrintSmokeResults(*service, queries);
}

Status RunSmokeQuery(const std::string& dir) {
  const DatasetConfig config = SmokeDatasetConfig();
  AMICI_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedSearchService> service,
      ShardedSearchService::OpenSnapshot(dir,
                                         ShardedSearchService::Options()));
  AMICI_ASSIGN_OR_RETURN(const std::vector<SocialQuery> queries,
                         SmokeQueries(config));
  return PrintSmokeResults(*service, queries);
}

int Run(int argc, char** argv) {
  const std::string command = argc >= 2 ? argv[1] : "";
  if (argc != 3 || (command != "info" && command != "verify" &&
                    command != "smoke-save" && command != "smoke-query")) {
    std::fprintf(stderr,
                 "usage: %s {info|verify|smoke-save|smoke-query} "
                 "SNAPSHOT_DIR\n",
                 argv[0]);
    return 1;
  }
  if (command == "smoke-save" || command == "smoke-query") {
    const Status status = command == "smoke-save" ? RunSmokeSave(argv[2])
                                                  : RunSmokeQuery(argv[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }
  const bool verify = command == "verify";
  const std::string dir = argv[2];

  auto report = InspectDir(dir, verify);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("  total         %" PRIu64 " segment(s), %" PRIu64
              " payload byte(s)\n",
              report.value().segments, report.value().bytes);
  if (verify) {
    if (report.value().failures > 0) {
      std::fprintf(stderr, "verify FAILED: %" PRIu64 " bad file(s)\n",
                   report.value().failures);
      return 1;
    }
    std::printf("verify OK\n");
  }
  return 0;
}

}  // namespace
}  // namespace amici

int main(int argc, char** argv) { return amici::Run(argc, argv); }
