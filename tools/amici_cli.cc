// amici_cli — command-line front end for the library, in the spirit of
// RocksDB's ldb/db_bench: generate and persist datasets, inspect them,
// run ad-hoc queries, and replay query traces.
//
//   amici_cli generate  --out DIR [--users N] [--items-per-user X]
//                       [--tags N] [--locality L] [--geo F] [--seed S]
//   amici_cli stats     --data DIR
//   amici_cli query     --data DIR --user U --tags 1,2,3
//                       [--k K] [--alpha A] [--algo hybrid] [--mode any]
//   amici_cli trace-gen --data DIR --out FILE [--queries N] [--alpha A]
//   amici_cli replay    --data DIR --trace FILE [--algo hybrid]
//
// Exit code 0 on success; errors go to stderr.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "graph/graph_algorithms.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/dataset_generator.h"
#include "workload/dataset_io.h"
#include "workload/query_workload.h"
#include "workload/trace.h"

namespace amici {
namespace {

/// Minimal "--key value" parser; flags must all take a value.
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected --flag, got: " + key);
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag needs a value: " + key);
      }
      flags.values_[key.substr(2)] = argv[++i];
    }
    return flags;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(),
                                                        nullptr);
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

Result<AlgorithmId> ParseAlgorithm(const std::string& name) {
  if (name == "exhaustive") return AlgorithmId::kExhaustive;
  if (name == "merge-scan") return AlgorithmId::kMergeScan;
  if (name == "content-first") return AlgorithmId::kContentFirst;
  if (name == "social-first") return AlgorithmId::kSocialFirst;
  if (name == "hybrid") return AlgorithmId::kHybrid;
  if (name == "geo-grid") return AlgorithmId::kGeoGrid;
  if (name == "nra") return AlgorithmId::kNra;
  return Status::InvalidArgument("unknown --algo: " + name);
}

Result<std::unique_ptr<SocialSearchEngine>> OpenEngine(const Flags& flags) {
  if (!flags.Has("data")) {
    return Status::InvalidArgument("--data DIR is required");
  }
  AMICI_ASSIGN_OR_RETURN(Dataset dataset,
                         LoadDataset(flags.GetString("data", "")));
  return SocialSearchEngine::Build(std::move(dataset.graph),
                                   std::move(dataset.store), {});
}

Status RunGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    return Status::InvalidArgument("--out DIR is required");
  }
  DatasetConfig config = MediumDataset();
  config.name = "cli";
  config.num_users = flags.GetUint("users", 10000);
  config.items_per_user = flags.GetDouble("items-per-user", 5.0);
  config.num_tags = flags.GetUint("tags", 5000);
  config.social_locality = flags.GetDouble("locality", 0.5);
  config.geo_fraction = flags.GetDouble("geo", 0.0);
  config.seed = flags.GetUint("seed", 42);

  Stopwatch watch;
  AMICI_ASSIGN_OR_RETURN(const Dataset dataset, GenerateDataset(config));
  AMICI_RETURN_IF_ERROR(SaveDataset(dataset, flags.GetString("out", "")));
  std::printf("generated %zu users / %zu items in %.0f ms -> %s\n",
              dataset.graph.num_users(), dataset.store.num_items(),
              watch.ElapsedMillis(), flags.GetString("out", "").c_str());
  return Status::Ok();
}

Status RunStats(const Flags& flags) {
  if (!flags.Has("data")) {
    return Status::InvalidArgument("--data DIR is required");
  }
  AMICI_ASSIGN_OR_RETURN(const Dataset dataset,
                         LoadDataset(flags.GetString("data", "")));
  TablePrinter table({"metric", "value"});
  table.AddRow({"users", WithThousandsSeparators(dataset.graph.num_users())});
  table.AddRow({"edges", WithThousandsSeparators(dataset.graph.num_edges())});
  table.AddRow({"avg degree",
                StringPrintf("%.2f", dataset.graph.AverageDegree())});
  table.AddRow({"max degree",
                WithThousandsSeparators(dataset.graph.MaxDegree())});
  table.AddRow({"clustering",
                StringPrintf("%.4f",
                             GlobalClusteringCoefficient(dataset.graph))});
  table.AddRow({"items",
                WithThousandsSeparators(dataset.store.num_items())});
  table.AddRow({"tag vocabulary",
                WithThousandsSeparators(dataset.tags.size())});
  std::printf("%s", table.ToString().c_str());
  return Status::Ok();
}

Status RunQuery(const Flags& flags) {
  AMICI_ASSIGN_OR_RETURN(auto engine, OpenEngine(flags));
  if (!flags.Has("user") || !flags.Has("tags")) {
    return Status::InvalidArgument("--user and --tags are required");
  }
  SocialQuery query;
  query.user = static_cast<UserId>(flags.GetUint("user", 0));
  for (const std::string& tag : Split(flags.GetString("tags", ""), ',')) {
    query.tags.push_back(
        static_cast<TagId>(std::strtoul(tag.c_str(), nullptr, 10)));
  }
  query.k = flags.GetUint("k", 10);
  query.alpha = flags.GetDouble("alpha", 0.5);
  const std::string mode = flags.GetString("mode", "any");
  if (mode == "all") {
    query.mode = MatchMode::kAll;
  } else if (mode != "any") {
    return Status::InvalidArgument("--mode must be any|all");
  }
  NormalizeQuery(&query);

  AMICI_ASSIGN_OR_RETURN(
      const AlgorithmId algorithm,
      ParseAlgorithm(flags.GetString("algo", "hybrid")));
  AMICI_ASSIGN_OR_RETURN(const QueryResult result,
                         engine->Query(query, algorithm));

  std::printf("%zu results in %.3f ms (%s)\n", result.items.size(),
              result.elapsed_ms, std::string(result.algorithm).c_str());
  TablePrinter table({"rank", "item", "owner", "score"});
  for (size_t i = 0; i < result.items.size(); ++i) {
    table.AddRow({std::to_string(i + 1),
                  std::to_string(result.items[i].item),
                  std::to_string(engine->store().owner(result.items[i].item)),
                  StringPrintf("%.4f", result.items[i].score)});
  }
  std::printf("%s", table.ToString().c_str());
  return Status::Ok();
}

Status RunTraceGen(const Flags& flags) {
  if (!flags.Has("data") || !flags.Has("out")) {
    return Status::InvalidArgument("--data DIR and --out FILE are required");
  }
  AMICI_ASSIGN_OR_RETURN(const Dataset dataset,
                         LoadDataset(flags.GetString("data", "")));
  QueryWorkloadConfig config;
  config.num_queries = flags.GetUint("queries", 100);
  config.k = flags.GetUint("k", 10);
  config.alpha = flags.GetDouble("alpha", 0.5);
  config.seed = flags.GetUint("seed", 4242);
  AMICI_ASSIGN_OR_RETURN(const std::vector<SocialQuery> queries,
                         GenerateQueries(dataset, config));
  AMICI_RETURN_IF_ERROR(
      SaveQueryTrace(queries, flags.GetString("out", "")));
  std::printf("wrote %zu queries -> %s\n", queries.size(),
              flags.GetString("out", "").c_str());
  return Status::Ok();
}

Status RunReplay(const Flags& flags) {
  if (!flags.Has("trace")) {
    return Status::InvalidArgument("--trace FILE is required");
  }
  AMICI_ASSIGN_OR_RETURN(auto engine, OpenEngine(flags));
  AMICI_ASSIGN_OR_RETURN(const std::vector<SocialQuery> queries,
                         LoadQueryTrace(flags.GetString("trace", "")));
  AMICI_ASSIGN_OR_RETURN(
      const AlgorithmId algorithm,
      ParseAlgorithm(flags.GetString("algo", "hybrid")));

  LatencyRecorder recorder;
  for (const SocialQuery& query : queries) {
    Stopwatch watch;
    AMICI_RETURN_IF_ERROR(engine->Query(query, algorithm).status());
    recorder.Record(watch.ElapsedMillis());
  }
  const LatencySummary summary = recorder.Summarize();
  std::printf("replayed %llu queries (%s)\n",
              static_cast<unsigned long long>(summary.count),
              std::string(AlgorithmName(algorithm)).c_str());
  std::printf("latency ms: mean %.3f  p50 %.3f  p90 %.3f  p99 %.3f  "
              "max %.3f\n",
              summary.mean, summary.p50, summary.p90, summary.p99,
              summary.max);
  std::printf("%s", engine->stats().ToString().c_str());
  return Status::Ok();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: amici_cli <generate|stats|query|trace-gen|replay> [--flags]\n"
      "  generate  --out DIR [--users N] [--items-per-user X] [--tags N]\n"
      "            [--locality L] [--geo F] [--seed S]\n"
      "  stats     --data DIR\n"
      "  query     --data DIR --user U --tags 1,2,3 [--k K] [--alpha A]\n"
      "            [--algo ALGO] [--mode any|all]\n"
      "  trace-gen --data DIR --out FILE [--queries N] [--k K] [--alpha A]\n"
      "  replay    --data DIR --trace FILE [--algo ALGO]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return Usage();
  }
  Status status;
  if (command == "generate") {
    status = RunGenerate(flags.value());
  } else if (command == "stats") {
    status = RunStats(flags.value());
  } else if (command == "query") {
    status = RunQuery(flags.value());
  } else if (command == "trace-gen") {
    status = RunTraceGen(flags.value());
  } else if (command == "replay") {
    status = RunReplay(flags.value());
  } else {
    return Usage();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace amici

int main(int argc, char** argv) { return amici::Main(argc, argv); }
