#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite.
#
#   tools/run_tier1.sh          # normal build into build/
#   tools/run_tier1.sh --tsan   # ThreadSanitizer build into build-tsan/
#                               # (validates the snapshot/ingest protocol)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ "${1:-}" == "--tsan" ]]; then
  BUILD_DIR=build-tsan
  CMAKE_ARGS+=(-DAMICI_SANITIZE=thread)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)"
