#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite, and emit a
# one-line pass/fail summary with the test count.
#
#   tools/run_tier1.sh          # normal build into build/
#   tools/run_tier1.sh --tsan   # ThreadSanitizer build into build-tsan/
#                               # (validates the snapshot/ingest/proximity
#                               # publication protocols), same summary line
#
# ccache is picked up automatically when installed (same launcher CI
# uses), which makes the rebuild after a small change near-instant.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ "${1:-}" == "--tsan" ]]; then
  BUILD_DIR=build-tsan
  CMAKE_ARGS+=(-DAMICI_SANITIZE=thread)
fi
if command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"

CTEST_LOG=$(mktemp)
trap 'rm -f "$CTEST_LOG"' EXIT
CTEST_STATUS=0
ctest --output-on-failure -j"$(nproc)" 2>&1 | tee "$CTEST_LOG" || CTEST_STATUS=$?

# ctest prints e.g. "100% tests passed, 0 tests failed out of 67".
TOTAL=$(sed -n 's/.*out of \([0-9]\+\).*/\1/p' "$CTEST_LOG" | tail -1)
FAILED=$(sed -n 's/.*, \([0-9]\+\) tests failed.*/\1/p' "$CTEST_LOG" | tail -1)
TOTAL=${TOTAL:-0}
FAILED=${FAILED:-$TOTAL}
PASSED=$((TOTAL - FAILED))

# Per-suite timing (slowest first) so the cost of the heavyweight suites
# — the randomized compaction-invariance and concurrency runs — stays
# visible as they grow. Parsed from ctest's per-test summary lines.
# Non-Passed statuses (***Timeout, ***Failed, Failed, ...) are flagged
# next to the suite name — a timeout burns its whole budget, so it
# always sorts into the slowest-15 and would otherwise hide in plain
# sight as "just a slow suite".
echo "[tier1] per-suite timing (slowest 15):"
sed -n 's/^ *[0-9]\+\/[0-9]\+ Test *#[0-9]\+: \([^ ]\+\) .*\(Passed\|Failed\|\*\*\*[A-Za-z]*\) \+\([0-9.]\+\) sec.*/\3 \1 \2/p' \
    "$CTEST_LOG" | sort -rn | head -15 |
  while read -r secs name status; do
    if [[ "$status" == "Passed" ]]; then
      printf '[tier1]   %8ss  %s\n' "$secs" "$name"
    else
      printf '[tier1]   %8ss  %s  <-- %s\n' "$secs" "$name" "$status"
    fi
  done
if [[ "$CTEST_STATUS" -eq 0 && "$TOTAL" -gt 0 ]]; then
  echo "[tier1] PASS: ${PASSED}/${TOTAL} tests (${BUILD_DIR})"
else
  echo "[tier1] FAIL: ${PASSED}/${TOTAL} tests passed, ${FAILED} failed (${BUILD_DIR})"
  exit 1
fi
